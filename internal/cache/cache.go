// Package cache implements the set-associative cache models that stand in
// for the paper's Simics g-cache module: single caches with LRU replacement
// and a two-level hierarchy (per-core private L1s over a shared L2) matching
// the Intel Core 2 Duo and P4 Xeon configurations used in the evaluation.
//
// The shared L2 publishes fill and eviction events to the Bloom-filter
// signature unit (internal/bloom) so it can shadow the cache's contents
// exactly the way the paper's hardware does. The unit is attached through
// SetUnit — a concrete *bloom.Unit pointer, so the per-fill/per-evict calls
// on the simulation's hottest path are direct (devirtualized). The generic
// Listener hook remains for tests and custom instrumentation.
package cache

import (
	"fmt"
	"math/bits"

	"symbiosched/internal/bloom"
)

// Replacement selects the victim-choice policy of a cache.
type Replacement int

const (
	// LRU evicts the least-recently-used line (the default; the paper's
	// machines and the g-cache model it emulates are LRU).
	LRU Replacement = iota
	// FIFO evicts the oldest-filled line regardless of reuse.
	FIFO
	// Random evicts a pseudo-random way (deterministic xorshift sequence).
	Random
)

// String names the policy.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Replacement(%d)", int(r))
	}
}

// Config describes one cache's geometry.
type Config struct {
	SizeBytes int // total capacity in bytes
	LineBytes int // line size in bytes (power of two)
	Ways      int // associativity; 1 = direct mapped
	// Replace selects the replacement policy (zero value: LRU). The
	// signature scheme never modifies replacement — one of its selling
	// points over the cache-partitioning related work (§6) — so every
	// policy works with the same filters.
	Replace Replacement
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// Lines returns the number of cache frames.
func (c Config) Lines() int { return c.SizeBytes / c.LineBytes }

// LineShift returns log2(LineBytes).
func (c Config) LineShift() uint { return uint(bits.TrailingZeros(uint(c.LineBytes))) }

func (c Config) validate() error {
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d must be a positive power of two", c.LineBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: ways %d must be positive", c.Ways)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible into %d-byte lines × %d ways", c.SizeBytes, c.LineBytes, c.Ways)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a power of two", s)
	}
	return nil
}

// Listener observes fills and evictions of a cache. Set and way identify the
// frame; lineAddr is the line-granular address (offset bits stripped).
type Listener interface {
	OnFill(core int, lineAddr uint64, set, way int)
	OnEvict(lineAddr uint64, set, way int)
}

// Stats accumulates access counts for one cache.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// MissRate returns Misses/Accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a single set-associative cache with a configurable replacement
// policy (true LRU by default).
//
// Hot-path layout: frames are stored structure-of-arrays. tags holds
// lineAddr+1 per frame (0 = invalid) so the hit scan touches a single dense
// uint64 array and needs no separate valid bit.
//
// Recency is position-encoded: for associativities up to 16, order holds one
// uint64 per set whose 4-bit nibbles list way indices from MRU (nibble 0) to
// LRU (nibble ways-1). A hit promotes its way's nibble to the front with a
// few shifts; the victim is read straight out of the LRU nibble — no
// timestamp array, no per-miss minimum scan. The nibble stack is initialised
// so victims emerge in way order 0,1,2,… while the set is filling, which
// reproduces the "first invalid way wins" rule of the timestamp
// implementation exactly (and keeps the valid ways a prefix of the row, so
// the hit scan can stop at the first invalid tag). Wider caches (ways > 16,
// unused by the paper's machines) fall back to the classic timestamp scheme.
//
// Global counters are derived: Access only updates the per-core Stats row
// plus one eviction counter, and Stats() sums the rows on demand — two fewer
// memory increments on every access.
type Cache struct {
	cfg       Config
	sets      int
	setMask   uint64
	lineShift uint
	ways      int
	tags      []uint64 // sets × ways, row-major by set; lineAddr+1, 0 = invalid
	valid     []uint16 // per-set count of valid ways (always a prefix of the row)
	order     []uint64 // per-set MRU→LRU nibble stack (ways ≤ 16)
	orderInit uint64   // initial stack: victims pop in way order 0,1,2,…
	useOrder  bool
	lruOrder  bool     // fused Replace==LRU && useOrder: one hit-path test
	used      []uint64 // fill/use timestamps (fallback, ways > 16)
	clock     uint64   // timestamp source for the fallback path
	evictions uint64
	rng       uint64      // xorshift state for Random replacement
	unit      *bloom.Unit // concrete fast-path observer (production)
	listener  Listener    // generic observer (tests/instrumentation)
	perCore   []Stats     // indexed by core; grown on demand
}

// rngSeed is the initial xorshift state for Random replacement; Reset
// restores it so a reused cache replays the same victim sequence as a fresh
// one.
const rngSeed = 0x9e3779b97f4a7c15

// New constructs a cache. It panics on an invalid geometry (machine
// descriptions are programmer-supplied, not user input).
func New(cfg Config) *Cache {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	c := &Cache{
		cfg:       cfg,
		sets:      cfg.Sets(),
		setMask:   uint64(cfg.Sets() - 1),
		lineShift: cfg.LineShift(),
		ways:      cfg.Ways,
		tags:      make([]uint64, cfg.Sets()*cfg.Ways),
		valid:     make([]uint16, cfg.Sets()),
		rng:       rngSeed,
	}
	if cfg.Ways <= 16 {
		c.useOrder = true
		c.lruOrder = cfg.Replace == LRU
		// Nibble i holds way ways-1-i: the LRU nibble starts at way 0, so an
		// untouched set's victims appear in index order, matching the
		// first-invalid-way rule of the timestamp scheme.
		for i := 0; i < cfg.Ways; i++ {
			c.orderInit |= uint64(cfg.Ways-1-i) << (4 * uint(i))
		}
		c.order = make([]uint64, cfg.Sets())
		for s := range c.order {
			c.order[s] = c.orderInit
		}
	} else {
		c.used = make([]uint64, cfg.Sets()*cfg.Ways)
	}
	return c
}

// SetListener attaches a generic fill/evict observer. Production code
// attaches the signature unit through SetUnit instead, which avoids the
// interface dispatch on every event; when both are set the unit wins.
func (c *Cache) SetListener(l Listener) { c.listener = l }

// SetUnit attaches the Bloom-filter signature unit through a concrete
// pointer. The per-event calls are direct method calls — the cache hot path
// pays no interface dispatch for signature maintenance.
func (c *Cache) SetUnit(u *bloom.Unit) { c.unit = u }

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated counters, derived by summing the per-core
// rows (the hot path maintains only those plus the eviction count; the
// access count is Hits+Misses by construction and is materialised here).
func (c *Cache) Stats() Stats {
	s := Stats{Evictions: c.evictions}
	for i := range c.perCore {
		s.Hits += c.perCore[i].Hits
		s.Misses += c.perCore[i].Misses
	}
	s.Accesses = s.Hits + s.Misses
	return s
}

// CoreStats returns the per-core counters (zero Stats for unseen cores).
func (c *Cache) CoreStats(core int) Stats {
	if core < len(c.perCore) {
		s := c.perCore[core]
		s.Accesses = s.Hits + s.Misses
		return s
	}
	return Stats{}
}

// LineAddr converts a byte address to the line-granular address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// setOf returns the set index for a line address.
func (c *Cache) setOf(lineAddr uint64) int { return int(lineAddr & c.setMask) }

// growPerCore extends the per-core stats slice to cover core with a single
// allocation (the previous version re-walked and appended one element at a
// time). Growth is amortized-doubling: cores typically arrive in ascending
// order, and sizing to exactly core+1 would copy the whole table once per
// new core — O(n²) over n cores. Out of line so the Access fast path stays
// small enough to inline the bounds check.
func (c *Cache) growPerCore(core int) {
	n := core + 1
	if d := 2 * len(c.perCore); d > n {
		n = d
	}
	grown := make([]Stats, n)
	copy(grown, c.perCore)
	c.perCore = grown
}

// Access performs a load or store of addr on behalf of core. It returns true
// on a hit. On a miss the line is filled, evicting the policy's victim if
// the set is full; fills and evictions are reported to the signature unit
// (or generic listener).
//
// The hit path is allocation-free and does no victim bookkeeping: it scans
// the set's tag row (stopping at the first invalid tag — valid ways are
// always a prefix) and, for LRU, promotes the hit way. All miss work lives
// in fillMiss.
func (c *Cache) Access(core int, addr uint64) bool {
	if core >= len(c.perCore) {
		c.growPerCore(core)
	}
	if c.AccessFast(core, addr) {
		c.perCore[core].Hits++
		return true
	}
	c.perCore[core].Misses++
	return false
}

// AccessFast is Access without the per-access statistics bookkeeping: cache
// state transitions (hit scan, LRU promotion, fills, evictions, unit
// events) are identical, but no hit/miss counter is touched. Batch drivers
// (the engine's inner loops) keep those counts in registers and credit them
// once per batch through AddCoreStats, which removes two read-modify-writes
// and a bounds check from every simulated memory access. All other callers
// should use Access.
func (c *Cache) AccessFast(core int, addr uint64) bool {
	lineAddr := addr >> c.lineShift
	tag := lineAddr + 1
	set := int(lineAddr & c.setMask)
	base := set * c.ways
	if c.lruOrder {
		// MRU-first probe: tag positions are static in the nibble scheme
		// (only the order word moves), so the most recently used way is one
		// load away — and an MRU hit needs no reordering. Re-referenced
		// lines are the common case on the L1, so this skips the scan far
		// more often than the extra compare costs. An empty or cold slot
		// holds tag 0, which can never match (tags are lineAddr+1 > 0).
		o := c.order[set]
		if c.tags[base+int(o&0xF)] == tag {
			return true
		}
		// Valid ways are a prefix of the row (fills consume ways in index
		// order), so the scan is bounded by the valid count and needs no
		// per-way invalid test. A hit here is never the MRU way (probed
		// above), so it always promotes.
		row := c.tags[base : base+int(c.valid[set])]
		for w := range row {
			if row[w] == tag {
				c.order[set] = promote(o, w)
				return true
			}
		}
		c.fillMiss(core, lineAddr, set, base)
		return false
	}
	row := c.tags[base : base+int(c.valid[set])]
	for w := range row {
		if row[w] == tag {
			if c.cfg.Replace == LRU {
				// Timestamp LRU (ways > 16): stamp the hit way.
				c.clock++
				c.used[base+w] = c.clock
			}
			return true
		}
	}
	c.fillMiss(core, lineAddr, set, base)
	return false
}

// AddCoreStats credits a batch of hit/miss counts to core's statistics row,
// pairing with AccessFast. Growing the row here (not per access) keeps the
// fast path free of the length check.
func (c *Cache) AddCoreStats(core int, hits, misses uint64) {
	if core >= len(c.perCore) {
		c.growPerCore(core)
	}
	c.perCore[core].Hits += hits
	c.perCore[core].Misses += misses
}

// promote moves way w's nibble to the MRU position (nibble 0) of an order
// word, shifting the nibbles in front of it up by one. The search for w's
// nibble is branchless: XORing w into every nibble turns the target into the
// word's first zero nibble, located with the carry-propagation trick.
func promote(o uint64, w int) uint64 {
	x := o ^ (uint64(w) * 0x1111111111111111)
	// Lowest set bit of m marks the first zero nibble of x (the standard
	// haszero trick, exact for the least significant occurrence).
	m := (x - 0x1111111111111111) & ^x & 0x8888888888888888
	p := uint(bits.TrailingZeros64(m)) &^ 3 // bit offset of the nibble, 4-aligned
	keep := o &^ (uint64(1)<<(p+4) - 1)     // nibbles above the target, unchanged
	shifted := (o & (uint64(1)<<p - 1)) << 4
	return keep | shifted | uint64(w)
}

// fillMiss handles the miss path: victim selection, eviction notification,
// and the fill. Victim choice is bit-identical to the timestamp scheme:
// first invalid way if any (they pop from the nibble stack in index order),
// else the true-LRU (or oldest-filled, for FIFO) way, else a deterministic
// xorshift-selected way (Random — the RNG advances only when no invalid way
// exists, as before).
func (c *Cache) fillMiss(core int, lineAddr uint64, set, base int) {
	if !c.useOrder {
		c.fillMissStamp(core, lineAddr, set, base)
		return
	}
	var victim int
	if nv := int(c.valid[set]); nv < c.ways {
		// Set not full: the next unused way (ways fill in index order).
		victim = nv
		c.valid[set] = uint16(nv + 1)
	} else {
		o := c.order[set]
		victim = int(o >> (4 * uint(c.ways-1)) & 0xF)
		if c.cfg.Replace == Random {
			// xorshift64: deterministic pseudo-random way selection. The RNG
			// advances only when no invalid way exists, as before.
			c.rng ^= c.rng << 13
			c.rng ^= c.rng >> 7
			c.rng ^= c.rng << 17
			victim = int(c.rng % uint64(c.ways))
		}
		old := c.tags[base+victim] - 1
		c.evictions++
		if c.unit != nil {
			c.unit.OnEvict(old, set, victim)
		} else if c.listener != nil {
			c.listener.OnEvict(old, set, victim)
		}
	}
	c.tags[base+victim] = lineAddr + 1
	c.order[set] = promote(c.order[set], victim)
	if c.unit != nil {
		c.unit.OnFill(core, lineAddr, set, victim)
	} else if c.listener != nil {
		c.listener.OnFill(core, lineAddr, set, victim)
	}
}

// fillMissStamp is the timestamp-based miss path for caches wider than 16
// ways. One pass finds both the first invalid way (which always wins) and
// the minimum-timestamp way (the LRU/FIFO victim when the set is full).
func (c *Cache) fillMissStamp(core int, lineAddr uint64, set, base int) {
	victim := -1
	full := true
	tags := c.tags[base : base+c.ways : base+c.ways]
	used := c.used[base : base+c.ways : base+c.ways]
	if nv := int(c.valid[set]); nv < c.ways {
		victim, full = nv, false
		c.valid[set] = uint16(nv + 1)
	} else {
		var victimUsed uint64 = ^uint64(0)
		for w := range tags {
			if u := used[w]; u < victimUsed {
				victim, victimUsed = w, u
			}
		}
	}
	if full {
		if c.cfg.Replace == Random {
			// xorshift64: deterministic pseudo-random way selection. The RNG
			// advances only when no invalid way exists, as before.
			c.rng ^= c.rng << 13
			c.rng ^= c.rng >> 7
			c.rng ^= c.rng << 17
			victim = int(c.rng % uint64(c.ways))
		}
		c.evictions++
		old := tags[victim] - 1
		if c.unit != nil {
			c.unit.OnEvict(old, set, victim)
		} else if c.listener != nil {
			c.listener.OnEvict(old, set, victim)
		}
	}
	tags[victim] = lineAddr + 1
	c.clock++
	used[victim] = c.clock
	if c.unit != nil {
		c.unit.OnFill(core, lineAddr, set, victim)
	} else if c.listener != nil {
		c.listener.OnFill(core, lineAddr, set, victim)
	}
}

// Contains reports whether the line holding addr is resident (no LRU or
// stats side effects). Intended for tests and footprint probes.
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := c.LineAddr(addr)
	tag := lineAddr + 1
	base := c.setOf(lineAddr) * c.ways
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// ResidentLines returns the number of valid frames: the cache's true
// footprint, used as ground truth when validating occupancy estimates.
func (c *Cache) ResidentLines() int {
	n := 0
	for _, t := range c.tags {
		if t != 0 {
			n++
		}
	}
	return n
}

// Flush invalidates every frame, reporting evictions to the unit/listener.
// The recency stacks are reset alongside, so a flushed set refills ways in
// index order exactly like a fresh cache (preserving the valid-prefix
// invariant the hit scan relies on).
func (c *Cache) Flush() {
	for i, t := range c.tags {
		if t == 0 {
			continue
		}
		c.evictions++
		if c.unit != nil {
			c.unit.OnEvict(t-1, i/c.ways, i%c.ways)
		} else if c.listener != nil {
			c.listener.OnEvict(t-1, i/c.ways, i%c.ways)
		}
		c.tags[i] = 0
	}
	for s := range c.valid {
		c.valid[s] = 0
	}
	for s := range c.order {
		c.order[s] = c.orderInit
	}
}

// ResetStats zeroes the counters without disturbing cache contents. The
// per-core slice keeps its length, so per-core accounting resumes without
// re-growing after a reset.
func (c *Cache) ResetStats() {
	c.evictions = 0
	for i := range c.perCore {
		c.perCore[i] = Stats{}
	}
}

// Reset returns the cache to its just-constructed state while keeping every
// allocation: tags invalidated, recency stacks (or timestamps) re-initialised,
// statistics and the replacement RNG reset. Unlike Flush, no eviction events
// are reported — a reset models powering up a fresh machine, not running the
// invalidation protocol — so an attached unit or listener sees nothing.
//
// The post-Reset cache is bit-for-bit equivalent to New(cfg): simulation
// arenas rely on this to reuse one cache across runs without perturbing
// determinism. Any new mutable field added to Cache must be reset here.
func (c *Cache) Reset() {
	clear(c.tags)
	clear(c.valid)
	for s := range c.order {
		c.order[s] = c.orderInit
	}
	clear(c.used)
	c.clock = 0
	c.evictions = 0
	c.rng = rngSeed
	for i := range c.perCore {
		c.perCore[i] = Stats{}
	}
}
