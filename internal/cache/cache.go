// Package cache implements the set-associative cache models that stand in
// for the paper's Simics g-cache module: single caches with LRU replacement
// and a two-level hierarchy (per-core private L1s over a shared L2) matching
// the Intel Core 2 Duo and P4 Xeon configurations used in the evaluation.
//
// The shared L2 publishes fill and eviction events to a Listener so the
// Bloom-filter signature unit (internal/bloom) can shadow its contents
// exactly the way the paper's hardware does.
package cache

import (
	"fmt"
	"math/bits"
)

// Replacement selects the victim-choice policy of a cache.
type Replacement int

const (
	// LRU evicts the least-recently-used line (the default; the paper's
	// machines and the g-cache model it emulates are LRU).
	LRU Replacement = iota
	// FIFO evicts the oldest-filled line regardless of reuse.
	FIFO
	// Random evicts a pseudo-random way (deterministic xorshift sequence).
	Random
)

// String names the policy.
func (r Replacement) String() string {
	switch r {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("Replacement(%d)", int(r))
	}
}

// Config describes one cache's geometry.
type Config struct {
	SizeBytes int // total capacity in bytes
	LineBytes int // line size in bytes (power of two)
	Ways      int // associativity; 1 = direct mapped
	// Replace selects the replacement policy (zero value: LRU). The
	// signature scheme never modifies replacement — one of its selling
	// points over the cache-partitioning related work (§6) — so every
	// policy works with the same filters.
	Replace Replacement
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// Lines returns the number of cache frames.
func (c Config) Lines() int { return c.SizeBytes / c.LineBytes }

// LineShift returns log2(LineBytes).
func (c Config) LineShift() uint { return uint(bits.TrailingZeros(uint(c.LineBytes))) }

func (c Config) validate() error {
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d must be a positive power of two", c.LineBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: ways %d must be positive", c.Ways)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible into %d-byte lines × %d ways", c.SizeBytes, c.LineBytes, c.Ways)
	}
	s := c.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a power of two", s)
	}
	return nil
}

// Listener observes fills and evictions of a cache. Set and way identify the
// frame; lineAddr is the line-granular address (offset bits stripped).
type Listener interface {
	OnFill(core int, lineAddr uint64, set, way int)
	OnEvict(lineAddr uint64, set, way int)
}

// Stats accumulates access counts for one cache.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// MissRate returns Misses/Accesses, or 0 for an untouched cache.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// line is one cache frame.
type line struct {
	addr  uint64 // line-granular address
	valid bool
	used  uint64 // LRU timestamp
}

// Cache is a single set-associative cache with a configurable replacement
// policy (true LRU by default).
type Cache struct {
	cfg       Config
	sets      int
	setMask   uint64
	lineShift uint
	frames    []line // sets × ways, row-major by set
	clock     uint64
	rng       uint64 // xorshift state for Random replacement
	listener  Listener
	stats     Stats
	perCore   []Stats // indexed by core when known; grown on demand
}

// New constructs a cache. It panics on an invalid geometry (machine
// descriptions are programmer-supplied, not user input).
func New(cfg Config) *Cache {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Cache{
		cfg:       cfg,
		sets:      cfg.Sets(),
		setMask:   uint64(cfg.Sets() - 1),
		lineShift: cfg.LineShift(),
		frames:    make([]line, cfg.Sets()*cfg.Ways),
		rng:       0x9e3779b97f4a7c15,
	}
}

// SetListener attaches a fill/evict observer (the signature unit).
func (c *Cache) SetListener(l Listener) { c.listener = l }

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// CoreStats returns the per-core counters (zero Stats for unseen cores).
func (c *Cache) CoreStats(core int) Stats {
	if core < len(c.perCore) {
		return c.perCore[core]
	}
	return Stats{}
}

// LineAddr converts a byte address to the line-granular address.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift }

// setOf returns the set index for a line address.
func (c *Cache) setOf(lineAddr uint64) int { return int(lineAddr & c.setMask) }

func (c *Cache) coreStats(core int) *Stats {
	for core >= len(c.perCore) {
		c.perCore = append(c.perCore, Stats{})
	}
	return &c.perCore[core]
}

// Access performs a load or store of addr on behalf of core. It returns true
// on a hit. On a miss the line is filled, evicting the policy's victim if
// the set is full; fills and evictions are reported to the listener.
func (c *Cache) Access(core int, addr uint64) bool {
	c.clock++
	c.stats.Accesses++
	cs := c.coreStats(core)
	cs.Accesses++

	lineAddr := c.LineAddr(addr)
	set := c.setOf(lineAddr)
	base := set * c.cfg.Ways

	victim := -1
	var victimUsed uint64 = ^uint64(0)
	invalid := -1
	for w := 0; w < c.cfg.Ways; w++ {
		f := &c.frames[base+w]
		if f.valid && f.addr == lineAddr {
			if c.cfg.Replace == LRU {
				f.used = c.clock
			}
			c.stats.Hits++
			cs.Hits++
			return true
		}
		if !f.valid {
			if invalid < 0 {
				invalid = w
			}
		} else if f.used < victimUsed {
			victim, victimUsed = w, f.used
		}
	}

	c.stats.Misses++
	cs.Misses++
	switch {
	case invalid >= 0:
		victim = invalid
	case c.cfg.Replace == Random:
		// xorshift64: deterministic pseudo-random way selection.
		c.rng ^= c.rng << 13
		c.rng ^= c.rng >> 7
		c.rng ^= c.rng << 17
		victim = int(c.rng % uint64(c.cfg.Ways))
	}
	f := &c.frames[base+victim]
	if f.valid {
		c.stats.Evictions++
		if c.listener != nil {
			c.listener.OnEvict(f.addr, set, victim)
		}
	}
	f.addr = lineAddr
	f.valid = true
	f.used = c.clock
	if c.listener != nil {
		c.listener.OnFill(core, lineAddr, set, victim)
	}
	return false
}

// Contains reports whether the line holding addr is resident (no LRU or
// stats side effects). Intended for tests and footprint probes.
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := c.LineAddr(addr)
	base := c.setOf(lineAddr) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		f := &c.frames[base+w]
		if f.valid && f.addr == lineAddr {
			return true
		}
	}
	return false
}

// ResidentLines returns the number of valid frames: the cache's true
// footprint, used as ground truth when validating occupancy estimates.
func (c *Cache) ResidentLines() int {
	n := 0
	for i := range c.frames {
		if c.frames[i].valid {
			n++
		}
	}
	return n
}

// Flush invalidates every frame, reporting evictions to the listener.
func (c *Cache) Flush() {
	for i := range c.frames {
		f := &c.frames[i]
		if f.valid {
			c.stats.Evictions++
			if c.listener != nil {
				c.listener.OnEvict(f.addr, i/c.cfg.Ways, i%c.cfg.Ways)
			}
			f.valid = false
		}
	}
}

// ResetStats zeroes the counters without disturbing cache contents.
func (c *Cache) ResetStats() {
	c.stats = Stats{}
	for i := range c.perCore {
		c.perCore[i] = Stats{}
	}
}
