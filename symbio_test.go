package symbio

import (
	"bytes"
	"testing"
)

func TestBenchmarksCatalog(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 20 {
		t.Fatalf("catalog size = %d, want 12 SPEC + 8 PARSEC", len(bs))
	}
	seen := map[string]Benchmark{}
	for _, b := range bs {
		if b.Name == "" || b.Class == "" || b.Threads <= 0 {
			t.Fatalf("bad benchmark %+v", b)
		}
		seen[b.Name] = b
	}
	if seen["mcf"].Class != "cache-hungry" || seen["mcf"].Threads != 1 {
		t.Fatalf("mcf = %+v", seen["mcf"])
	}
	if seen["ferret"].Threads != 4 {
		t.Fatalf("ferret = %+v", seen["ferret"])
	}
}

func TestPoliciesResolve(t *testing.T) {
	for _, p := range Policies() {
		if _, err := p.impl(); err != nil {
			t.Errorf("policy %q does not resolve: %v", p, err)
		}
	}
	if _, err := Policy("bogus").impl(); err == nil {
		t.Fatal("bogus policy accepted")
	}
	// Empty policy defaults to the paper's best algorithm.
	if _, err := Policy("").impl(); err != nil {
		t.Fatal("default policy does not resolve")
	}
}

func TestNewSignatureUnit(t *testing.T) {
	u := NewSignatureUnit(CacheGeometry{Sets: 64, Ways: 4}, 2)
	u.OnFill(0, 0x40, 0, 0)
	sig := u.ContextSwitch(0)
	if sig.Occupancy != 1 || len(sig.Symbiosis) != 2 {
		t.Fatalf("signature = %+v", sig)
	}
}

func TestRecommendErrors(t *testing.T) {
	if _, err := Recommend(nil, nil); err == nil {
		t.Fatal("empty mix accepted")
	}
	if _, err := Recommend([]string{"nosuch"}, nil); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := Recommend([]string{"mcf"}, &Options{Policy: "bogus"}); err == nil {
		t.Fatal("bogus policy accepted")
	}
}

func TestRecommendQuick(t *testing.T) {
	s, err := Recommend([]string{"mcf", "libquantum", "povray", "gobmk"},
		&Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Mapping) != 4 {
		t.Fatalf("mapping = %v", s.Mapping)
	}
	if len(s.Groups) != 2 {
		t.Fatalf("groups = %v", s.Groups)
	}
	total := len(s.Groups[0]) + len(s.Groups[1])
	if total != 4 {
		t.Fatalf("groups cover %d benchmarks: %v", total, s.Groups)
	}
}

func TestEvaluateQuick(t *testing.T) {
	ev, err := Evaluate([]string{"mcf", "libquantum", "povray", "gobmk"},
		&Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Names) != 4 || len(ev.Improvements) != 4 {
		t.Fatalf("evaluation shape: %+v", ev)
	}
	if len(ev.Candidates) < 3 {
		t.Fatalf("candidates = %d", len(ev.Candidates))
	}
	chosen := 0
	for _, c := range ev.Candidates {
		if c.Chosen {
			chosen++
		}
		if len(c.UserCycles) != 4 {
			t.Fatalf("candidate times = %v", c.UserCycles)
		}
	}
	if chosen != 1 {
		t.Fatalf("%d candidates marked chosen", chosen)
	}
	// mcf (index 0) must improve; povray (index 2) must be insensitive.
	if ev.Improvements[0] < 0.05 {
		t.Fatalf("mcf improvement %.3f too small", ev.Improvements[0])
	}
	if ev.Improvements[2] > 0.10 {
		t.Fatalf("povray improvement %.3f too large", ev.Improvements[2])
	}
}

func TestEvaluateVirtualizedQuick(t *testing.T) {
	ev, err := Evaluate([]string{"mcf", "libquantum", "povray", "gobmk"},
		&Options{Quick: true, Virtualized: true})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Improvements[0] <= 0 {
		t.Fatalf("virtualized mcf improvement %.3f", ev.Improvements[0])
	}
	native, err := Evaluate([]string{"mcf", "libquantum", "povray", "gobmk"},
		&Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Improvements[0] >= native.Improvements[0] {
		t.Fatalf("VM improvement %.3f not below native %.3f",
			ev.Improvements[0], native.Improvements[0])
	}
}

func TestScheduleGroupsMultithreaded(t *testing.T) {
	s, err := Recommend([]string{"ferret", "swaptions"},
		&Options{Quick: true, Policy: TwoPhaseMultithreaded})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Mapping) != 8 {
		t.Fatalf("mapping length %d, want 8 threads", len(s.Mapping))
	}
}

func TestTraceFacadeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := CaptureTrace("mcf", 5000, 64, 7, &buf); err != nil {
		t.Fatal(err)
	}
	refs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 5000 {
		t.Fatalf("read %d refs", len(refs))
	}
	var buf2 bytes.Buffer
	if err := WriteTrace(refs, &buf2); err != nil {
		t.Fatal(err)
	}
	refs2, err := ReadTrace(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs2) != len(refs) {
		t.Fatalf("re-encoded trace has %d refs", len(refs2))
	}
	for i := range refs {
		if refs[i] != refs2[i] {
			t.Fatalf("ref %d differs after re-encode", i)
		}
	}
	// The replay type is a usable RefSource.
	var src RefSource = &TraceReplay{Refs: refs, Loop: true}
	mem := 0
	for i := 0; i < 1000; i++ {
		if src.Next().Mem {
			mem++
		}
	}
	if mem == 0 {
		t.Fatal("replay produced no memory refs")
	}
}

func TestTraceFacadeErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := CaptureTrace("nosuch", 10, 64, 1, &buf); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if err := CaptureTrace("mcf", 0, 64, 1, &buf); err == nil {
		t.Fatal("zero-length capture accepted")
	}
}
