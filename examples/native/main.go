// Native scheduling study: compare all allocation policies on several
// benchmark mixes of the SPEC-like pool, the way the paper's §5.2 / Fig 13
// compares its three algorithms. The output shows that occupancy-weight
// information (weight sorting, weighted interference graph) beats both the
// contention-oblivious default and the miss-rate heuristic the paper argues
// against in §2.2.
//
// Run with:
//
//	go run ./examples/native
package main

import (
	"fmt"
	"log"
	"strings"

	symbio "symbiosched"
)

func main() {
	mixes := [][]string{
		{"mcf", "libquantum", "povray", "gobmk"},
		{"omnetpp", "hmmer", "sjeng", "perlbench"},
		{"soplex", "milc", "gcc", "bzip2"},
	}
	policies := []symbio.Policy{
		symbio.RoundRobin, // what an oblivious OS does
		symbio.MissRateSort,
		symbio.WeightSort,
		symbio.InterferenceGraph,
		symbio.WeightedInterferenceGraph,
	}

	for _, mix := range mixes {
		fmt.Printf("mix: %s\n", strings.Join(mix, " + "))
		for _, pol := range policies {
			ev, err := symbio.Evaluate(mix, &symbio.Options{Quick: true, Policy: pol})
			if err != nil {
				log.Fatal(err)
			}
			var sum float64
			for _, imp := range ev.Improvements {
				sum += imp
			}
			mean := sum / float64(len(ev.Improvements))
			fmt.Printf("  %-28s mean improvement %+5.1f%%  groups %v\n",
				pol, 100*mean, ev.Chosen.Groups)
		}
		fmt.Println()
	}
	fmt.Println("Improvement is measured against the worst possible mapping for")
	fmt.Println("each mix, the paper's §4.2 protocol. Policies that read the")
	fmt.Println("Bloom-filter footprint signatures group the heavy cache users")
	fmt.Println("onto one core, where time-slicing replaces L2 contention.")
}
