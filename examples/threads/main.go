// Multi-threaded scheduling study: the paper's §3.3.4/§5.1.3 scenario.
// PARSEC-like applications run four threads each; sibling threads share data
// intensely, so a naive thread-granular interference metric would read the
// sharing as contention and scatter the threads. The two-phase adaptation
// first groups each process's threads by occupancy weight, then runs the
// weighted interference graph with intra-process edges pinned.
//
// Run with:
//
//	go run ./examples/threads
package main

import (
	"fmt"
	"log"

	symbio "symbiosched"
)

func main() {
	mix := []string{"ferret", "canneal", "swaptions", "blackscholes"}

	// The naive policy: weighted interference graph straight over threads,
	// no process awareness.
	naive, err := symbio.Evaluate(mix, &symbio.Options{
		Quick:  true,
		Policy: symbio.WeightedInterferenceGraph,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's two-phase multi-threaded adaptation.
	twoPhase, err := symbio.Evaluate(mix, &symbio.Options{
		Quick:  true,
		Policy: symbio.TwoPhaseMultithreaded,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Four PARSEC-like apps × four threads on a dual-core shared-L2 machine")
	fmt.Println()
	fmt.Printf("%-14s %22s %22s\n", "application", "naive thread graph", "two-phase (§3.3.4)")
	var naiveSum, tpSum float64
	for i, name := range naive.Names {
		fmt.Printf("%-14s %+21.1f%% %+21.1f%%\n",
			name, 100*naive.Improvements[i], 100*twoPhase.Improvements[i])
		naiveSum += naive.Improvements[i]
		tpSum += twoPhase.Improvements[i]
	}
	n := float64(len(naive.Names))
	fmt.Printf("%-14s %+21.1f%% %+21.1f%%\n", "MEAN", 100*naiveSum/n, 100*tpSum/n)
	fmt.Println()
	fmt.Println("two-phase groups:", twoPhase.Chosen.Groups)
	fmt.Println()
	fmt.Println("Improvements are relative to the worst candidate mapping; as in the")
	fmt.Println("paper's Fig 12, multi-threaded gains are more modest than SPEC's")
	fmt.Println("because PARSEC working sets are smaller than the shared L2.")
}
