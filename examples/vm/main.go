// Virtualized scheduling study: the paper's §5.1.2 scenario. Four
// benchmarks, each encapsulated in its own Xen-style VM, run on the same
// dual-core shared-L2 machine; the Dom0 allocation policy maps vcpus to
// cores using per-VM footprint signatures. The example contrasts native and
// virtualized gains for the same mix — the Fig 10 vs Fig 11 comparison:
// gains survive virtualization but shrink, because hypervisor overhead and
// Dom0 cache churn add schedule-independent cost to every mapping.
//
// Run with:
//
//	go run ./examples/vm
package main

import (
	"fmt"
	"log"

	symbio "symbiosched"
)

func main() {
	mix := []string{"mcf", "libquantum", "povray", "hmmer"}

	for _, virtualized := range []bool{false, true} {
		label := "native"
		if virtualized {
			label = "Xen-style VMs (12.5% overhead + world switches + Dom0 churn)"
		}
		ev, err := symbio.Evaluate(mix, &symbio.Options{
			Quick:       true,
			Virtualized: virtualized,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", label)
		fmt.Printf("  chosen schedule: %v\n", ev.Chosen.Groups)
		for i, name := range ev.Names {
			fmt.Printf("  %-12s improvement over worst mapping %+5.1f%%\n",
				name, 100*ev.Improvements[i])
		}
		fmt.Println()
	}
	fmt.Println("As in the paper, the relative trend across benchmarks persists")
	fmt.Println("inside VMs but the magnitudes drop — the destructive caching")
	fmt.Println("effect crosses VM boundaries even though nothing else does.")
}
