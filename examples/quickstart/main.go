// Quickstart: ask the library for a contention-aware schedule for four
// programs on the simulated dual-core, shared-L2 machine, then verify the
// recommendation by measuring every possible mapping.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	symbio "symbiosched"
)

func main() {
	// The canonical mix from the paper's Table 1 discussion: one cache
	// destroyer (mcf), one streaming aggressor (libquantum), and two
	// benign programs (povray compute-bound, gobmk mostly compute).
	mix := []string{"mcf", "libquantum", "povray", "gobmk"}

	// Options: nil runs the experiment-grade configuration with the paper's
	// best policy (the weighted interference graph). Quick trades fidelity
	// for speed — fine for a demo.
	opts := &symbio.Options{Quick: true}

	// Phase 1 (the paper's §4.1): run the mix under the Bloom-filter
	// signature hardware and let the policy vote on a mapping.
	schedule, err := symbio.Recommend(mix, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Recommended schedule (processes sharing a core time-slice")
	fmt.Println("instead of fighting for the shared L2):")
	for core, group := range schedule.Groups {
		fmt.Printf("  core %d: %v\n", core, group)
	}

	// Phase 2 (§4.2): run every candidate mapping to completion and report
	// how much the chosen schedule saves each benchmark over the worst one.
	ev, err := symbio.Evaluate(mix, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMeasured user time per mapping (Mcycles):")
	for _, cand := range ev.Candidates {
		marker := " "
		if cand.Chosen {
			marker = "*"
		}
		fmt.Printf("%s mapping %v:", marker, cand.Mapping)
		for i, u := range cand.UserCycles {
			fmt.Printf("  %s=%.1f", ev.Names[i], float64(u)/1e6)
		}
		fmt.Println()
	}
	fmt.Println("\nImprovement of the chosen schedule over the worst mapping:")
	for i, name := range ev.Names {
		fmt.Printf("  %-12s %+5.1f%%\n", name, 100*ev.Improvements[i])
	}
}
