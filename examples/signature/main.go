// Stand-alone signature hardware: the paper's architectural contribution
// used WITHOUT the bundled simulator. This example wires a SignatureUnit to
// a deliberately tiny hand-rolled direct-mapped cache, replays two synthetic
// access patterns through it — the Figure 1 pair: identical miss rates,
// footprints differing by an order of magnitude — and shows that the occupancy weight separates
// them where the miss counter cannot.
//
// Use this as the template for attaching the unit to your own cache model:
// call OnFill for every fill, OnEvict for every replacement, and
// ContextSwitch whenever your scheduler deschedules a context.
//
// Run with:
//
//	go run ./examples/signature
package main

import (
	"fmt"

	symbio "symbiosched"
)

// toyCache is a minimal direct-mapped cache: 64 sets × 1 way, 64-byte lines.
// It is intentionally not the library's cache model — the point is that any
// simulator can host the signature unit.
type toyCache struct {
	tags   [64]uint64
	valid  [64]bool
	unit   *symbio.SignatureUnit
	misses int
}

func (c *toyCache) access(core int, addr uint64) {
	line := addr >> 6
	set := int(line % 64)
	if c.valid[set] && c.tags[set] == line {
		return // hit: the signature hardware only watches fills/evictions
	}
	c.misses++
	if c.valid[set] {
		c.unit.OnEvict(c.tags[set], set, 0)
	}
	c.tags[set] = line
	c.valid[set] = true
	c.unit.OnFill(core, line, set, 0)
}

func main() {
	unit := symbio.NewSignatureUnit(symbio.CacheGeometry{Sets: 64, Ways: 1}, 2)
	cache := &toyCache{unit: unit}

	// Application A (core 0): stride of 64 lines — every access lands in
	// set 0, 100% misses, one-set footprint.
	for i := 0; i < 4096; i++ {
		cache.access(0, uint64(i%32)*64*64*64)
	}
	missesA := cache.misses
	sigA := unit.ContextSwitch(0)

	// Application B (core 1): stride of 2 lines over a large region —
	// also ~100% misses, but it roams half the sets.
	cache.misses = 0
	for i := 0; i < 4096; i++ {
		cache.access(1, uint64(i%2048)*2*64)
	}
	missesB := cache.misses
	sigB := unit.ContextSwitch(1)

	fmt.Println("Two applications with (nearly) identical miss counts:")
	fmt.Printf("  A: %4d misses, occupancy weight %3d\n", missesA, sigA.Occupancy)
	fmt.Printf("  B: %4d misses, occupancy weight %3d\n", missesB, sigB.Occupancy)
	fmt.Println()
	fmt.Printf("The miss counter cannot tell them apart; the Bloom-filter\n")
	fmt.Printf("occupancy weight differs by %.1fx — the Figure 1 argument.\n",
		float64(sigB.Occupancy)/float64(max(sigA.Occupancy, 1)))
	fmt.Println()
	fmt.Printf("B's symbiosis with core 0's filter: %d (high = low interference)\n", sigB.Symbiosis[0])
	fmt.Printf("B's footprint overlap with core 0's filter: %d positions\n", sigB.Overlap[0])
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
