// Command coordinator runs a distributed sweep campaign: it serves shard
// work units over HTTP to `symbiosched -worker` processes, re-dispatches
// stragglers when leases expire, folds accepted shards into a streaming
// partial merge (live at /status), and exits writing the final report —
// byte-identical to a single-process `symbiosched <fig>` run.
//
// Usage:
//
//	coordinator -figure fig10 -shards 8 -addr :8377 &
//	symbiosched -worker http://host:8377       # on each worker machine
//
// The coordinator exits 0 with the report on stdout once every shard is
// merged, and 1 when a shard exhausts its dispatch attempts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"symbiosched/internal/coordctl"
	"symbiosched/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8377", "listen address")
	figure := flag.String("figure", "fig10", "sweep to run: fig10, fig11 or fig12")
	shards := flag.Int("shards", 4, "number of shards to cut the campaign into")
	quick := flag.Bool("quick", false, "run at test scale")
	seed := flag.Uint64("seed", 0, "workload seed (0 = default)")
	poolFlag := flag.String("pool", "", "comma-separated benchmark subset (default: the figure's pool)")
	traceDir := flag.String("trace-dir", "", "replace the figure's pool with the trace files (*.trc or *.symc) in this directory; workers fetch them from this coordinator's content-addressed /trace endpoint")
	leaseTimeout := flag.Duration("lease-timeout", 10*time.Minute, "re-dispatch a shard when its lease is this old")
	maxAttempts := flag.Int("max-attempts", 3, "dispatch attempts per shard before the campaign fails")
	statusEvery := flag.Duration("status-every", 15*time.Second, "progress line period on stderr (0 disables)")
	linger := flag.Duration("linger", 6*time.Second, "keep serving after completion so polling workers observe it and exit (0 disables)")
	out := flag.String("out", "", "write the final report as JSON to this path")
	csv := flag.Bool("csv", false, "emit the final table as CSV")
	flag.Parse()

	logf := log.New(os.Stderr, "", log.Ltime).Printf

	var pool []string
	if *poolFlag != "" {
		for _, n := range strings.Split(*poolFlag, ",") {
			n = strings.TrimSpace(n)
			// Trace pools carry their own names; NewCampaign validates the
			// subset against the directory listing instead.
			if *traceDir == "" {
				if _, err := workload.ByName(n); err != nil {
					fatal(err)
				}
			}
			pool = append(pool, n)
		}
	}
	campaign, err := coordctl.NewCampaign(*figure, *quick, *seed, pool, *traceDir, *shards)
	if err != nil {
		fatal(err)
	}
	srv, err := coordctl.NewServer(coordctl.ServerOptions{
		Campaign:     campaign,
		LeaseTimeout: *leaseTimeout,
		MaxAttempts:  *maxAttempts,
		Logf:         logf,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}()
	combos, _ := campaign.Combos()
	logf("coordinator: serving %s (%d combos in %d shards, pool hash %s) on http://%s",
		campaign.Figure, combos, campaign.ShardTotal, campaign.PoolHash, ln.Addr())
	if n := len(campaign.Traces); n > 0 {
		var total int64
		for _, ref := range campaign.Traces {
			total += ref.Size
		}
		logf("coordinator: corpus of %d traces (%.1f MiB) served at /trace/<fingerprint>", n, float64(total)/(1<<20))
	}
	logf("coordinator: start workers with: symbiosched -worker http://<this-host>%s", *addr)

	if *statusEvery > 0 {
		go func() {
			t := time.NewTicker(*statusEvery)
			defer t.Stop()
			for {
				select {
				case <-srv.Done():
					return
				case <-t.C:
					st := srv.StatusSnapshot()
					counts := map[string]int{}
					for _, sh := range st.Shards {
						counts[sh.State]++
					}
					logf("coordinator: %d/%d combos merged; shards: %d done, %d leased, %d pending, %d failed",
						st.CombosCovered, st.TotalCombos, counts["done"], counts["leased"], counts["pending"], counts["failed"])
				}
			}
		}()
	}

	<-srv.Done()
	// Keep answering for a moment: workers sleeping in their poll backoff
	// (capped at 5s) learn the campaign is over from a 410 instead of
	// finding a dead socket and burning their retry budget against it.
	lingerDone := time.After(*linger)
	finish := func(code int) {
		if *linger > 0 {
			logf("coordinator: lingering %v so workers observe completion (-linger 0 to skip)", *linger)
		}
		<-lingerDone
		httpSrv.Close()
		os.Exit(code)
	}
	if err := srv.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		finish(1)
	}
	report, err := srv.Report()
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		logf("coordinator: report written to %s", *out)
	}
	if *csv {
		fmt.Print(report.Table().CSV())
	} else {
		fmt.Println(report.Table().String())
	}
	finish(0)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coordinator:", err)
	os.Exit(1)
}
