// Command coordinator runs the campaign coordinator in one of three modes.
//
// One-shot (default, the original interface): submit a single campaign,
// serve it to `symbiosched -worker` processes, print the merged report and
// exit — byte-identical to a single-process `symbiosched <fig>` run. With
// -state-dir the campaign is journaled: killing the coordinator mid-sweep
// and rerunning the same command line resumes from the journal without
// recomputing any accepted shard.
//
//	coordinator -figure fig10 -shards 8 -state-dir /var/lib/coord &
//	symbiosched -worker http://host:8377       # on each worker machine
//
// Daemon (-serve): a persistent multi-campaign service. Campaigns are
// submitted, listed and cancelled over the REST API (or with the admin verbs
// below); the daemon journals everything under -state-dir and resumes its
// campaigns on restart. Bearer tokens (-worker-token/-admin-token) and TLS
// (-tls-cert/-tls-key) guard non-trusted networks; /metrics serves
// Prometheus text.
//
//	coordinator -serve -state-dir /var/lib/coord -worker-token W -admin-token A
//
// Admin client (-connect): drive a running daemon.
//
//	coordinator -connect http://host:8377 -token A -figure fig11 -shards 16   # submit
//	coordinator -connect http://host:8377 -token A -list
//	coordinator -connect http://host:8377 -token A -cancel c3
//	coordinator -connect http://host:8377 -token A -watch c2 [-out report.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"symbiosched/internal/coordctl"
	"symbiosched/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8377", "listen address")
	serve := flag.Bool("serve", false, "run as a persistent multi-campaign daemon (no campaign submitted at startup; use POST /campaigns or -connect)")
	stateDir := flag.String("state-dir", "", "journal accepted campaigns and shards here; a restarted coordinator resumes from it")
	figure := flag.String("figure", "fig10", "sweep to run: fig10, fig11 or fig12")
	shards := flag.Int("shards", 4, "number of shards to cut the campaign into")
	quick := flag.Bool("quick", false, "run at test scale")
	seed := flag.Uint64("seed", 0, "workload seed (0 = default)")
	poolFlag := flag.String("pool", "", "comma-separated benchmark subset (default: the figure's pool)")
	traceDir := flag.String("trace-dir", "", "replace the figure's pool with the trace files (*.trc or *.symc) in this directory; workers fetch them from this coordinator's content-addressed /trace endpoint")
	leaseTimeout := flag.Duration("lease-timeout", 10*time.Minute, "re-dispatch a shard when its lease is this old")
	maxAttempts := flag.Int("max-attempts", 3, "dispatch attempts per shard before the campaign fails")
	statusEvery := flag.Duration("status-every", 15*time.Second, "progress line period on stderr (0 disables)")
	linger := flag.Duration("linger", 6*time.Second, "keep serving after completion so polling workers observe it and exit (0 disables)")
	out := flag.String("out", "", "write the final report as JSON to this path")
	csv := flag.Bool("csv", false, "emit the final table as CSV")
	workerToken := flag.String("worker-token", "", "bearer token required on worker endpoints (lease/submit/status/trace/metrics)")
	adminToken := flag.String("admin-token", "", "bearer token required to submit or cancel campaigns")
	tlsCert := flag.String("tls-cert", "", "serve TLS with this certificate (requires -tls-key)")
	tlsKey := flag.String("tls-key", "", "TLS private key for -tls-cert")
	connect := flag.String("connect", "", "act as an admin client against the daemon at this URL instead of serving")
	token := flag.String("token", "", "bearer token for -connect requests")
	tlsCA := flag.String("tls-ca", "", "PEM file of root CAs to trust for -connect over https (e.g. the daemon's self-signed cert)")
	list := flag.Bool("list", false, "with -connect: list the daemon's campaigns")
	cancel := flag.String("cancel", "", "with -connect: cancel this campaign id")
	watch := flag.String("watch", "", "with -connect: wait for this campaign and print its report")
	flag.Parse()

	if (*tlsCert != "") != (*tlsKey != "") {
		fatal(fmt.Errorf("-tls-cert and -tls-key must be set together"))
	}

	if *connect != "" {
		runAdmin(adminArgs{
			url: *connect, token: *token, tlsCA: *tlsCA,
			list: *list, cancel: *cancel, watch: *watch,
			figure: *figure, quick: *quick, seed: *seed,
			pool: *poolFlag, traceDir: *traceDir, shards: *shards,
			statusEvery: *statusEvery, out: *out, csv: *csv,
		})
		return
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv, err := coordctl.NewServer(coordctl.ServerOptions{
		StateDir:     *stateDir,
		LeaseTimeout: *leaseTimeout,
		MaxAttempts:  *maxAttempts,
		WorkerToken:  *workerToken,
		AdminToken:   *adminToken,
		Logger:       logger,
	})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		var err error
		if *tlsCert != "" {
			err = httpSrv.ServeTLS(ln, *tlsCert, *tlsKey)
		} else {
			err = httpSrv.Serve(ln)
		}
		if err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}()
	scheme := "http"
	if *tlsCert != "" {
		scheme = "https"
	}
	logger.Info("coordinator listening", "url", fmt.Sprintf("%s://%s", scheme, ln.Addr()),
		"state_dir", *stateDir, "tls", *tlsCert != "",
		"worker_auth", *workerToken != "", "admin_auth", *adminToken != "")

	if *serve {
		// Daemon mode: campaigns come and go over the API; we serve forever.
		logger.Info("daemon mode: submit campaigns with POST /campaigns or `coordinator -connect`")
		select {}
	}

	// One-shot compatibility shim: submit (or, restarting with a journal,
	// adopt) a single campaign and exit with its report.
	var pool []string
	if *poolFlag != "" {
		for _, n := range strings.Split(*poolFlag, ",") {
			n = strings.TrimSpace(n)
			// Trace pools carry their own names; NewCampaign validates the
			// subset against the directory listing instead.
			if *traceDir == "" {
				if _, err := workload.ByName(n); err != nil {
					fatal(err)
				}
			}
			pool = append(pool, n)
		}
	}
	campaign, err := coordctl.NewCampaign(*figure, *quick, *seed, pool, *traceDir, *shards)
	if err != nil {
		fatal(err)
	}
	id, adopted, err := srv.AdoptOrSubmit(campaign)
	if err != nil {
		fatal(err)
	}
	combos, _ := campaign.Combos()
	if adopted {
		st, _ := srv.Status(id)
		logger.Info("campaign resumed from journal", "campaign", id,
			"figure", campaign.Figure, "combos_merged", st.CombosCovered, "combos", combos)
	}
	logger.Info("serving campaign", "campaign", id, "figure", campaign.Figure,
		"combos", combos, "shards", campaign.ShardTotal, "pool_hash", campaign.PoolHash)
	if n := len(campaign.Traces); n > 0 {
		var total int64
		for _, ref := range campaign.Traces {
			total += ref.Size
		}
		logger.Info("serving trace corpus", "traces", n, "mib", float64(total)/(1<<20))
	}
	logger.Info("start workers", "cmd", fmt.Sprintf("symbiosched -worker %s://<this-host>%s", scheme, *addr))

	if *statusEvery > 0 {
		go func() {
			t := time.NewTicker(*statusEvery)
			defer t.Stop()
			for {
				select {
				case <-srv.Done(id):
					return
				case <-t.C:
					st, err := srv.Status(id)
					if err != nil {
						return
					}
					counts := map[string]int{}
					for _, sh := range st.Shards {
						counts[sh.State]++
					}
					logger.Info("progress", "campaign", id,
						"combos_merged", st.CombosCovered, "combos", st.TotalCombos,
						"done", counts["done"], "leased", counts["leased"],
						"pending", counts["pending"], "failed", counts["failed"])
				}
			}
		}()
	}

	<-srv.Done(id)
	// Keep answering for a moment: workers sleeping in their poll backoff
	// (capped at 5s) learn the campaign is over from a 410 instead of
	// finding a dead socket and burning their retry budget against it.
	lingerDone := time.After(*linger)
	finish := func(code int) {
		if *linger > 0 {
			logger.Info("lingering so workers observe completion", "linger", *linger)
		}
		<-lingerDone
		httpSrv.Close()
		srv.Close()
		os.Exit(code)
	}
	if err := srv.Err(id); err != nil {
		fmt.Fprintln(os.Stderr, "coordinator:", err)
		finish(1)
	}
	report, err := srv.Report(id)
	if err != nil {
		fatal(err)
	}
	if *out != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		logger.Info("report written", "path", *out)
	}
	if *csv {
		fmt.Print(report.Table().CSV())
	} else {
		fmt.Println(report.Table().String())
	}
	finish(0)
}

// adminArgs is everything the -connect admin client needs.
type adminArgs struct {
	url, token, tlsCA string
	list              bool
	cancel, watch     string
	figure            string
	quick             bool
	seed              uint64
	pool, traceDir    string
	shards            int
	statusEvery       time.Duration
	out               string
	csv               bool
}

// runAdmin drives a running daemon: list, cancel, watch, or submit+watch.
func runAdmin(a adminArgs) {
	cl := coordctl.Client{BaseURL: a.url, Worker: "admin", Token: a.token}
	if a.tlsCA != "" {
		cfg, err := coordctl.TLSConfigFromCA(a.tlsCA)
		if err != nil {
			fatal(err)
		}
		cl.TLS = cfg
	}
	ctx := context.Background()
	switch {
	case a.list:
		campaigns, err := cl.Campaigns(ctx)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-6s %-6s %-10s %10s %14s %10s\n", "ID", "FIGURE", "STATE", "SHARDS", "COMBOS", "ELAPSED")
		for _, c := range campaigns {
			fmt.Printf("%-6s %-6s %-10s %5d/%-4d %7d/%-6d %9.0fs\n",
				c.ID, c.Figure, c.State, c.ShardsDone, c.ShardTotal, c.CombosCovered, c.TotalCombos, c.ElapsedSeconds)
		}
	case a.cancel != "":
		if err := cl.CancelCampaign(ctx, a.cancel); err != nil {
			fatal(err)
		}
		fmt.Printf("campaign %s cancelled\n", a.cancel)
	case a.watch != "":
		watchCampaign(ctx, &cl, a, a.watch)
	default:
		var pool []string
		if a.pool != "" {
			for _, n := range strings.Split(a.pool, ",") {
				pool = append(pool, strings.TrimSpace(n))
			}
		}
		created, err := cl.SubmitCampaign(ctx, coordctl.CampaignRequest{
			Figure: a.figure, Quick: a.quick, Seed: a.seed,
			Pool: pool, TraceDir: a.traceDir, Shards: a.shards,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "coordinator: campaign %s submitted (%s, %d combos in %d shards)\n",
			created.ID, created.Campaign.Figure, created.Combos, created.Campaign.ShardTotal)
		watchCampaign(ctx, &cl, a, created.ID)
	}
}

// watchCampaign polls a campaign to completion, then prints its report like
// the one-shot mode does.
func watchCampaign(ctx context.Context, cl *coordctl.Client, a adminArgs, id string) {
	every := a.statusEvery
	if every <= 0 {
		every = 2 * time.Second
	}
	for {
		st, err := cl.Status(ctx, id)
		if err != nil {
			fatal(err)
		}
		switch st.State {
		case "running":
			fmt.Fprintf(os.Stderr, "coordinator: %s %d/%d combos merged\n", id, st.CombosCovered, st.TotalCombos)
			time.Sleep(every)
			continue
		case "done":
		default:
			fatal(fmt.Errorf("campaign %s %s: %s", id, st.State, st.Error))
		}
		break
	}
	report, err := cl.Report(ctx, id)
	if err != nil {
		fatal(err)
	}
	if a.out != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(a.out, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}
	if a.csv {
		fmt.Print(report.Table().CSV())
	} else {
		fmt.Println(report.Table().String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "coordinator:", err)
	os.Exit(1)
}
