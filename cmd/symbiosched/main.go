// Command symbiosched regenerates the tables and figures of the paper's
// evaluation on the simulated testbed. Each experiment prints the same rows
// or series the paper reports.
//
// Usage:
//
//	symbiosched [flags] <experiment>
//
// Experiments: fig1, fig5 (also covers fig2), fig3a, fig3b, table1, fig10,
// fig11, fig12, fig13, fig14, overheads, quad, fairness, allocscale, all.
//
// Flags:
//
//	-quick        run at test scale (1/64 machine, short runs)
//	-csv          emit CSV instead of aligned tables where applicable
//	-seed N       workload seed
//	-workers N    simulation parallelism (default GOMAXPROCS)
//	-pool a,b,c   restrict the benchmark pool for fig10/fig11/fig12
//	-trace-dir d  sweep over captured traces (cmd/tracegen) instead of the
//	              synthetic pool; -pool then filters by trace name
//	-trace-stream N  stream traces with an N-run buffer (multi-GB captures)
//	-progress     print live task throughput and worker utilization to stderr
//	-cpuprofile f write a CPU profile of the experiment to f
//	-memprofile f write an end-of-run heap profile to f
//
// Cross-machine sharding (fig10/fig11/fig12 only — see EXPERIMENTS.md):
//
//	symbiosched -shard 0/3 -out s0.json fig10   # on machine 0
//	symbiosched -shard 1/3 -out s1.json fig10   # on machine 1
//	symbiosched -shard 2/3 -out s2.json fig10   # on machine 2
//	symbiosched -merge 's*.json'                # anywhere: the full figure
//
// Or let a coordinator dispatch the shards (see cmd/coordinator): each
// worker leases shards, runs them, and submits the results until the
// campaign is merged:
//
//	symbiosched -worker http://coordinator:8377
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"symbiosched/internal/coordctl"
	"symbiosched/internal/experiments"
	"symbiosched/internal/metrics"
	"symbiosched/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "run at test scale")
	csv := flag.Bool("csv", false, "emit CSV where applicable")
	md := flag.Bool("md", false, "emit GitHub-flavored markdown tables")
	seed := flag.Uint64("seed", 0, "workload seed (0 = default)")
	workers := flag.Int("workers", 0, "simulation parallelism (0 = GOMAXPROCS)")
	poolFlag := flag.String("pool", "", "comma-separated benchmark subset for the sweeps")
	traceDir := flag.String("trace-dir", "", "replace the sweep pool with the trace files (*.trc captures or *.symc compiled) in this directory (fig10-style sweeps and shards)")
	traceStream := flag.Int("trace-stream", 0, "with -trace-dir: stream traces through an N-run decode-ahead buffer instead of compiling them into memory (0 = compile)")
	shardFlag := flag.String("shard", "", "run one sweep shard, as i/N (fig10/fig11/fig12 only)")
	outFlag := flag.String("out", "", "shard output path (default <fig>-shard-<i>of<N>.json)")
	mergeFlag := flag.String("merge", "", "merge shard files matching this glob and print the report")
	workerFlag := flag.String("worker", "", "serve a campaign coordinator at this URL as a shard worker")
	traceCache := flag.String("trace-cache", "", "with -worker: fetch a trace campaign's corpus from the coordinator into this content-addressed cache directory (default <user cache dir>/symbiosched/traces)")
	tokenFlag := flag.String("token", "", "with -worker: bearer token for a coordinator that requires worker auth")
	tlsCAFlag := flag.String("tls-ca", "", "with -worker: PEM file of root CAs to trust for an https coordinator (e.g. its self-signed cert)")
	progressFlag := flag.Bool("progress", false, "print live task throughput and worker utilization to stderr")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment to this file")
	memProfile := flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 && *mergeFlag == "" && *workerFlag == "" {
		usage()
		os.Exit(2)
	}

	if *workerFlag != "" {
		if err := runWorker(*workerFlag, *workers, *traceCache, *tokenFlag, *tlsCAFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects so the profile shows retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers

	var prog *progress
	if *progressFlag {
		prog = newProgress(cfg)
		cfg.OnTask = prog.onTask
		defer prog.summary()
	}

	pool, err := resolvePool(*poolFlag, *traceDir, *traceStream)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	emit := func(t metrics.Table) {
		switch {
		case *csv:
			fmt.Print(t.CSV())
		case *md:
			fmt.Println(t.Markdown())
		default:
			fmt.Println(t.String())
		}
	}

	if *mergeFlag != "" {
		report, shards, err := experiments.MergeShardFiles(*mergeFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, s := range shards {
			fmt.Fprintf(os.Stderr, "shard %d/%d: combos [%d,%d) of %d, %d outcomes, %.1fs\n",
				s.Index, s.Total, s.ComboLo, s.ComboHi, s.TotalCombos, len(s.Outcomes), s.ElapsedSeconds)
		}
		emit(report.Table())
		return
	}

	if *shardFlag != "" {
		if err := runShard(cfg, *shardFlag, flag.Arg(0), *outFlag, pool); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	run := func(name string) bool {
		start := time.Now()
		defer func() {
			fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
		}()
		switch name {
		case "fig1":
			emit(experiments.Figure1(cfg).Table())
		case "fig2", "fig5":
			res := experiments.Figure5(cfg)
			fmt.Println(res.Render())
			fmt.Printf("correlation with true footprint: occupancy weight %.3f, miss counter %.3f, TLB misses %.3f\n\n",
				res.OccupancyCorr, res.MissCorr, res.TLBCorr)
		case "fig3a":
			emit(experiments.Figure3a(cfg).Table())
		case "fig3b":
			emit(experiments.Figure3b(cfg).Table())
		case "table1":
			emit(experiments.Table1(cfg).Table())
		case "fig10":
			emit(experiments.Figure10(cfg, pool).Table())
		case "fig11":
			emit(experiments.Figure11(cfg, pool).Table())
		case "fig12":
			emit(experiments.Figure12(cfg, poolOrNil(pool, workload.PARSEC())).Table())
		case "fig13":
			emit(experiments.Figure13(cfg).Table())
		case "fig14":
			emit(experiments.Figure14(cfg).Table())
		case "overheads":
			emit(experiments.Overheads(2).Table())
		case "quad":
			qc := cfg
			if qc.CandidateLimit == 0 && *quick {
				qc.CandidateLimit = 15
			}
			emit(experiments.QuadCore(qc, nil).Table())
		case "fairness":
			emit(experiments.Fairness(cfg).Table())
		case "allocscale":
			emit(experiments.AllocScale(cfg))
		case "pairs":
			emit(experiments.Figure3b(cfg).MatrixTable())
		default:
			return false
		}
		return true
	}

	name := flag.Arg(0)
	if name == "list" {
		t := metrics.Table{
			Title:   "Synthetic benchmark pool",
			Headers: []string{"benchmark", "class", "threads"},
		}
		for _, p := range append(workload.SPEC2006(), workload.PARSEC()...) {
			t.AddRow(p.Name, p.Class.String(), p.Threads)
		}
		emit(t)
		return
	}
	if name == "all" {
		for _, n := range []string{"fig1", "fig5", "fig3a", "fig3b", "table1",
			"fig10", "fig11", "fig12", "fig13", "fig14", "overheads",
			"quad", "fairness"} {
			run(n)
		}
		return
	}
	if !run(name) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
		usage()
		os.Exit(2) // nothing ran, so the skipped profile defers lose nothing
	}
}

// resolvePool builds the benchmark pool the sweeps run over. Without
// -trace-dir it resolves the comma-separated -pool names against the
// synthetic catalog (empty means each experiment's default pool). With
// -trace-dir the pool is the directory's trace captures — compiled into
// shared run-length form, or streamed through bounded buffers when
// -trace-stream is set — and -pool filters it by trace name.
func resolvePool(s, traceDir string, streamRuns int) ([]workload.Profile, error) {
	var names []string
	if s != "" {
		for _, n := range strings.Split(s, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}
	var out []workload.Profile
	switch {
	case traceDir != "":
		var err error
		if streamRuns > 0 {
			out, err = experiments.StreamingTracePoolFromDir(traceDir, streamRuns)
		} else {
			out, err = experiments.TracePoolFromDir(traceDir)
		}
		if err != nil {
			return nil, err
		}
		if names != nil {
			if out, err = experiments.SelectProfiles(out, names); err != nil {
				return nil, err
			}
		}
	case names != nil:
		for _, name := range names {
			p, err := workload.ByName(name)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
	default:
		return nil, nil
	}
	if len(out) < 4 {
		return nil, fmt.Errorf("pool needs at least 4 benchmarks, got %d", len(out))
	}
	return out, nil
}

// poolOrNil substitutes nil (the experiment's default pool) when the user
// pool contains single-threaded benchmarks unsuitable for fig12.
func poolOrNil(pool []workload.Profile, dflt []workload.Profile) []workload.Profile {
	if pool == nil {
		return nil
	}
	for _, p := range pool {
		if p.Threads == 1 {
			fmt.Fprintln(os.Stderr, "note: -pool contains single-threaded benchmarks; using the PARSEC pool for fig12")
			return nil
		}
	}
	_ = dflt
	return pool
}

// runWorker serves a coordinator until its campaign completes: lease a
// shard, simulate it, submit the result, repeat — with jittered
// exponential backoff between failed or empty polls. Trace campaigns fetch
// their corpus from the coordinator into a content-addressed local cache
// (resumable, fingerprint-verified), so workers need no shared filesystem.
// Ctrl-C abandons the current lease cleanly (the coordinator re-dispatches
// it on expiry).
func runWorker(url string, simWorkers int, traceCache, token, tlsCA string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	w := coordctl.NewWorker(url, simWorkers)
	w.Client.Token = token
	if tlsCA != "" {
		cfg, err := coordctl.TLSConfigFromCA(tlsCA)
		if err != nil {
			return err
		}
		w.Client.TLS = cfg
	}
	if traceCache == "" {
		if base, err := os.UserCacheDir(); err == nil {
			traceCache = filepath.Join(base, "symbiosched", "traces")
		}
	}
	w.TraceCache = traceCache
	w.Logf = log.New(os.Stderr, "", log.Ltime).Printf
	return w.Loop(ctx)
}

// runShard parses "-shard i/N", runs that slice of the figure's sweep, and
// writes the shard file.
func runShard(cfg experiments.Config, shard, figure, out string, pool []workload.Profile) error {
	var idx, total int
	if n, err := fmt.Sscanf(shard, "%d/%d", &idx, &total); n != 2 || err != nil {
		return fmt.Errorf("bad -shard %q: want i/N (e.g. 0/3)", shard)
	}
	spec, err := experiments.SweepSpecFor(figure)
	if err != nil {
		return err
	}
	if pool != nil {
		// A restricted pool changes the combination space; the shard header's
		// pool hash binds the merge to the same -pool on every machine.
		spec.Pool = pool
	}
	cfg.ShardIndex, cfg.ShardTotal = idx, total
	start := time.Now()
	s, err := cfg.RunShard(spec)
	if err != nil {
		return err
	}
	if out == "" {
		out = fmt.Sprintf("%s-shard-%dof%d.json", spec.Figure, idx, total)
	}
	if err := experiments.WriteShard(out, s); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s: combos [%d,%d) of %d in %v\n",
		out, s.ComboLo, s.ComboHi, s.TotalCombos, time.Since(start).Round(time.Millisecond))
	return nil
}

// progress aggregates scheduler task completions into a live throughput line
// (at most one per second, on stderr) and a final utilization summary.
type progress struct {
	workers int
	start   time.Time

	mu     sync.Mutex
	last   time.Time
	phase1 int
	cands  int
	steals int
	busy   time.Duration
}

func newProgress(cfg experiments.Config) *progress {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &progress{workers: w, start: time.Now()}
}

// onTask is installed as Config.OnTask; it is called concurrently from the
// scheduler's workers.
func (p *progress) onTask(ti experiments.TaskInfo) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ti.Kind == experiments.TaskPhase1 {
		p.phase1++
	} else {
		p.cands++
	}
	if ti.Stolen {
		p.steals++
	}
	p.busy += ti.Duration
	now := time.Now()
	if now.Sub(p.last) < time.Second {
		return
	}
	p.last = now
	elapsed := now.Sub(p.start).Seconds()
	fmt.Fprintf(os.Stderr, "progress: %d mixes profiled, %d candidates done, %.1f mixes/sec, %d stolen\n",
		p.phase1, p.cands, float64(p.phase1)/elapsed, p.steals)
}

// summary prints the end-of-run totals: task counts, steal count, and
// worker utilization (busy simulation time over workers × wall time).
func (p *progress) summary() {
	p.mu.Lock()
	defer p.mu.Unlock()
	elapsed := time.Since(p.start)
	if p.phase1+p.cands == 0 || elapsed <= 0 {
		return
	}
	util := p.busy.Seconds() / (elapsed.Seconds() * float64(p.workers))
	fmt.Fprintf(os.Stderr, "progress: total %d phase-1 + %d candidate tasks, %d stolen, %.0f%% worker utilization over %v\n",
		p.phase1, p.cands, p.steals, 100*util, elapsed.Round(time.Millisecond))
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: symbiosched [flags] <experiment>

experiments:
  fig1       footprints vs miss rate motivating example
  fig5       occupancy weight vs miss counters time series (covers fig2)
  fig3a      pairwise degradation, private-L2 SMP, pair on one core
  fig3b      pairwise degradation, shared-L2 dual core
  table1     povray/gobmk/libquantum/hmmer under all mappings
  fig10      per-benchmark max/avg improvement, native
  fig11      per-benchmark max/avg improvement, Xen-style VMs
  fig12      per-benchmark max/avg improvement, multi-threaded PARSEC
  fig13      the three allocation algorithms compared
  fig14      hash function comparison
  overheads  §5.4 storage-cost accounting
  quad       8 processes on 4 cores via hierarchical MIN-CUT (§3.3.2 extension)
  fairness   per-mapping slowdowns and Jain fairness index
  allocscale allocator latency: dense vs sparse vs incremental repair, P up to 4096
  pairs      full pairwise degradation matrix (the data behind fig3b)
  list       the synthetic benchmark catalog
  all        everything above

sharding (fig10/fig11/fig12):
  -shard i/N <fig>   run combos [i*C/N,(i+1)*C/N) and write a shard file (-out)
  -merge 'glob'      merge shard files into the figure's report (no experiment arg)
  -worker URL        lease and run shards from a campaign coordinator
                     (see cmd/coordinator; no experiment arg)

flags:
`)
	flag.PrintDefaults()
}
