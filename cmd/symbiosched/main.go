// Command symbiosched regenerates the tables and figures of the paper's
// evaluation on the simulated testbed. Each experiment prints the same rows
// or series the paper reports.
//
// Usage:
//
//	symbiosched [flags] <experiment>
//
// Experiments: fig1, fig5 (also covers fig2), fig3a, fig3b, table1, fig10,
// fig11, fig12, fig13, fig14, overheads, all.
//
// Flags:
//
//	-quick        run at test scale (1/64 machine, short runs)
//	-csv          emit CSV instead of aligned tables where applicable
//	-seed N       workload seed
//	-workers N    simulation parallelism (default GOMAXPROCS)
//	-pool a,b,c   restrict the benchmark pool for fig10/fig11/fig12
//	-cpuprofile f write a CPU profile of the experiment to f
//	-memprofile f write an end-of-run heap profile to f
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"symbiosched/internal/experiments"
	"symbiosched/internal/metrics"
	"symbiosched/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "run at test scale")
	csv := flag.Bool("csv", false, "emit CSV where applicable")
	md := flag.Bool("md", false, "emit GitHub-flavored markdown tables")
	seed := flag.Uint64("seed", 0, "workload seed (0 = default)")
	workers := flag.Int("workers", 0, "simulation parallelism (0 = GOMAXPROCS)")
	poolFlag := flag.String("pool", "", "comma-separated benchmark subset for the sweeps")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the experiment to this file")
	memProfile := flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() != 1 {
		usage()
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects so the profile shows retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}()
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Workers = *workers

	pool, err := parsePool(*poolFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	emit := func(t metrics.Table) {
		switch {
		case *csv:
			fmt.Print(t.CSV())
		case *md:
			fmt.Println(t.Markdown())
		default:
			fmt.Println(t.String())
		}
	}

	run := func(name string) bool {
		start := time.Now()
		defer func() {
			fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
		}()
		switch name {
		case "fig1":
			emit(experiments.Figure1(cfg).Table())
		case "fig2", "fig5":
			res := experiments.Figure5(cfg)
			fmt.Println(res.Render())
			fmt.Printf("correlation with true footprint: occupancy weight %.3f, miss counter %.3f, TLB misses %.3f\n\n",
				res.OccupancyCorr, res.MissCorr, res.TLBCorr)
		case "fig3a":
			emit(experiments.Figure3a(cfg).Table())
		case "fig3b":
			emit(experiments.Figure3b(cfg).Table())
		case "table1":
			emit(experiments.Table1(cfg).Table())
		case "fig10":
			emit(experiments.Figure10(cfg, pool).Table())
		case "fig11":
			emit(experiments.Figure11(cfg, pool).Table())
		case "fig12":
			emit(experiments.Figure12(cfg, poolOrNil(pool, workload.PARSEC())).Table())
		case "fig13":
			emit(experiments.Figure13(cfg).Table())
		case "fig14":
			emit(experiments.Figure14(cfg).Table())
		case "overheads":
			emit(experiments.Overheads(2).Table())
		case "quad":
			qc := cfg
			if qc.CandidateLimit == 0 && *quick {
				qc.CandidateLimit = 15
			}
			emit(experiments.QuadCore(qc, nil).Table())
		case "fairness":
			emit(experiments.Fairness(cfg).Table())
		case "pairs":
			emit(experiments.Figure3b(cfg).MatrixTable())
		default:
			return false
		}
		return true
	}

	name := flag.Arg(0)
	if name == "list" {
		t := metrics.Table{
			Title:   "Synthetic benchmark pool",
			Headers: []string{"benchmark", "class", "threads"},
		}
		for _, p := range append(workload.SPEC2006(), workload.PARSEC()...) {
			t.AddRow(p.Name, p.Class.String(), p.Threads)
		}
		emit(t)
		return
	}
	if name == "all" {
		for _, n := range []string{"fig1", "fig5", "fig3a", "fig3b", "table1",
			"fig10", "fig11", "fig12", "fig13", "fig14", "overheads",
			"quad", "fairness"} {
			run(n)
		}
		return
	}
	if !run(name) {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
		usage()
		os.Exit(2) // nothing ran, so the skipped profile defers lose nothing
	}
}

// parsePool resolves a comma-separated benchmark list; empty means the full
// default pool for each experiment.
func parsePool(s string) ([]workload.Profile, error) {
	if s == "" {
		return nil, nil
	}
	var out []workload.Profile
	for _, name := range strings.Split(s, ",") {
		p, err := workload.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) < 4 {
		return nil, fmt.Errorf("pool needs at least 4 benchmarks, got %d", len(out))
	}
	return out, nil
}

// poolOrNil substitutes nil (the experiment's default pool) when the user
// pool contains single-threaded benchmarks unsuitable for fig12.
func poolOrNil(pool []workload.Profile, dflt []workload.Profile) []workload.Profile {
	if pool == nil {
		return nil
	}
	for _, p := range pool {
		if p.Threads == 1 {
			fmt.Fprintln(os.Stderr, "note: -pool contains single-threaded benchmarks; using the PARSEC pool for fig12")
			return nil
		}
	}
	_ = dflt
	return pool
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: symbiosched [flags] <experiment>

experiments:
  fig1       footprints vs miss rate motivating example
  fig5       occupancy weight vs miss counters time series (covers fig2)
  fig3a      pairwise degradation, private-L2 SMP, pair on one core
  fig3b      pairwise degradation, shared-L2 dual core
  table1     povray/gobmk/libquantum/hmmer under all mappings
  fig10      per-benchmark max/avg improvement, native
  fig11      per-benchmark max/avg improvement, Xen-style VMs
  fig12      per-benchmark max/avg improvement, multi-threaded PARSEC
  fig13      the three allocation algorithms compared
  fig14      hash function comparison
  overheads  §5.4 storage-cost accounting
  quad       8 processes on 4 cores via hierarchical MIN-CUT (§3.3.2 extension)
  fairness   per-mapping slowdowns and Jain fairness index
  pairs      full pairwise degradation matrix (the data behind fig3b)
  list       the synthetic benchmark catalog
  all        everything above

flags:
`)
	flag.PrintDefaults()
}
