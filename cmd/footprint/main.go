// Command footprint profiles a benchmark's cache-footprint signature over
// time: it runs the benchmark on core 0 of the simulated shared-L2 machine
// (optionally against a streaming co-runner on core 1) and prints, per
// sampling window, the Core Filter occupancy weight, the RBV occupancy, the
// windowed L2 miss count and the L2 miss rate — the quantities behind
// Figures 2 and 5 of the paper.
package main

import (
	"flag"
	"fmt"
	"os"

	"symbiosched/internal/engine"
	"symbiosched/internal/experiments"
	"symbiosched/internal/kernel"
	"symbiosched/internal/workload"
)

func main() {
	bench := flag.String("bench", "mcf", "benchmark to profile")
	windows := flag.Uint64("windows", 30, "number of sampling windows")
	background := flag.Bool("background", true, "run a streaming co-runner on core 1")
	quick := flag.Bool("quick", true, "run at test scale (-quick=false for experiment scale)")
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}

	p, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "footprint:", err)
		os.Exit(1)
	}
	profiles := []workload.Profile{p}
	aff := []int{}
	for i := 0; i < p.Threads; i++ {
		aff = append(aff, 0)
	}
	if *background {
		hm, err := workload.ByName("hmmer")
		if err != nil {
			fmt.Fprintln(os.Stderr, "footprint:", err)
			os.Exit(1)
		}
		profiles = append(profiles, hm)
		aff = append(aff, 1)
	}

	procs := kernel.Workload(profiles, cfg.Seed, cfg.Scale())
	ec := cfg.EngineConfig()
	ec.QuantumCycles = 1 << 62 // sample the LF manually at window boundaries
	m := engine.New(ec, procs)
	m.SetAffinities(aff)

	fmt.Printf("# %s on core 0 (%s), window = %d cycles, filter entries = %d\n",
		p.Name, map[bool]string{true: "hmmer streaming on core 1", false: "solo"}[*background],
		cfg.MonitorPeriod, m.Unit().Entries())
	fmt.Printf("%8s %10s %10s %10s %10s\n", "window", "occupancy", "rbv", "misses", "missrate")

	var lastMisses, lastRefs uint64
	window := uint64(0)
	m.Run(engine.RunOptions{
		Horizon:       (*windows + 1) * cfg.MonitorPeriod,
		MonitorPeriod: cfg.MonitorPeriod,
		OnMonitor: func(m *engine.Machine, now uint64) {
			st := m.Hierarchy().L2For(0).CoreStats(0)
			sig := m.Unit().ContextSwitch(0)
			if window > 0 {
				dm := st.Misses - lastMisses
				dr := st.Accesses - lastRefs
				rate := 0.0
				if dr > 0 {
					rate = float64(dm) / float64(dr)
				}
				fmt.Printf("%8d %10d %10d %10d %9.1f%%\n",
					window, m.Unit().OccupancyWeight(0), sig.Occupancy, dm, 100*rate)
			}
			lastMisses, lastRefs = st.Misses, st.Accesses
			window++
		},
	})
}
