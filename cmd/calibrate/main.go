// Command calibrate prints the contention profile of the synthetic
// benchmark pool: each benchmark's solo CPI and runtime, and its user-time
// degradation when co-run against representative aggressors on the
// shared-L2 machine. This is the tool used to keep the pool's behaviour
// classes aligned with the paper's (§2.3): cache-hungry programs must
// degrade heavily against streaming aggressors, compute-bound ones barely.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"symbiosched/internal/engine"
	"symbiosched/internal/experiments"
	"symbiosched/internal/kernel"
	"symbiosched/internal/workload"
)

func main() {
	quick := flag.Bool("quick", true, "run at test scale (default; -quick=false for experiment scale)")
	aggressors := flag.String("aggressors", "libquantum,hmmer,mcf", "comma-separated aggressor list")
	flag.Parse()

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	ecfg := cfg.EngineConfig()
	sc := cfg.Scale()

	var aggr []workload.Profile
	for _, n := range strings.Split(*aggressors, ",") {
		p, err := workload.ByName(strings.TrimSpace(n))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		aggr = append(aggr, p)
	}

	pool := workload.SPEC2006()
	sort.Slice(pool, func(i, j int) bool { return pool[i].Class < pool[j].Class })

	solo := func(p workload.Profile) (cpi float64, cycles uint64) {
		procs := kernel.Workload([]workload.Profile{p}, cfg.Seed, sc)
		m := engine.New(ecfg, procs)
		m.SetAffinities([]int{0})
		m.Run(engine.RunOptions{})
		c := procs[0].CompletionUser()
		return float64(c) / float64(procs[0].Threads[0].InstrTarget), c
	}
	paired := func(p, a workload.Profile) uint64 {
		procs := kernel.Workload([]workload.Profile{p, a}, cfg.Seed, sc)
		m := engine.New(ecfg, procs)
		m.SetAffinities([]int{0, 1})
		m.Run(engine.RunOptions{})
		return procs[0].CompletionUser()
	}

	fmt.Printf("%-12s %-14s %8s %10s", "benchmark", "class", "soloCPI", "cycles")
	for _, a := range aggr {
		fmt.Printf(" %12s", "vs "+a.Name)
	}
	fmt.Println()
	for _, p := range pool {
		cpi, cycles := solo(p)
		fmt.Printf("%-12s %-14s %8.2f %10d", p.Name, p.Class, cpi, cycles)
		for _, a := range aggr {
			if a.Name == p.Name {
				fmt.Printf(" %12s", "—")
				continue
			}
			cont := paired(p, a)
			fmt.Printf(" %+11.1f%%", 100*(float64(cont)/float64(cycles)-1))
		}
		fmt.Println()
	}
}
