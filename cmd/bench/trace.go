package main

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"

	"symbiosched/internal/trace"
	"symbiosched/internal/workload"
)

// The trace I/O microbenchmark: what it costs to go from a corpus file on
// disk to the first replayed run, and how fast a full decode+replay pass
// moves, for each of the four replay paths:
//
//   - v1-compile:  varint capture, trace.Compile decodes the whole file into
//     run-length form before the first run is available — the pre-v2
//     baseline every other row is measured against.
//   - compiled:    v2 raw container read through ReadCompiled (bulk record
//     copy, no varint work).
//   - mmap:        v2 raw container through OpenCompiled — the view is a
//     reinterpreted mapping, so "open" does no decode at all.
//   - compressed:  v2 framed-flate container streamed frame by frame
//     (FrameStreamReplay), the O(frame) memory path.
//
// The fixture is synthesized deterministically (LCG) at -tracemb MiB of
// resident run records, written once per container, and every path must
// replay the identical instruction stream: the FNV checksum over
// (skip, line) pairs plus the tail is computed on every pass and all four
// rows must agree — a divergence aborts the benchmark, so every recorded
// point is also a replay-parity check. Open-to-first-run is p50/p99 over
// -tracereps samples; throughput is resident MiB (records actually decoded,
// 16 B per memory reference) per second of the full pass, so the rows are
// comparable even though their on-disk sizes differ.

// TracePoint is one replay path's row of the trace I/O benchmark.
type TracePoint struct {
	Format  string  `json:"format"`
	FileMB  float64 `json:"file_mb"` // on-disk size of this container
	MemRefs uint64  `json:"mem_refs"`
	// Open-to-first-run latency over -tracereps samples.
	OpenP50Ms float64 `json:"open_p50_ms"`
	OpenP99Ms float64 `json:"open_p99_ms"`
	// Full decode+replay pass, resident MiB per second.
	ReplayMBps float64 `json:"replay_mbps"`
	// Checksum hashes the replayed instruction stream; all formats must agree.
	Checksum string `json:"checksum"`
}

// synthTrace builds the deterministic fixture: mb MiB of 16-byte run records
// with an mcf-like reference density (skips of 0..3) over a 256 MiB-line
// region, so the varint baseline neither degenerates nor inflates.
func synthTrace(mb int) *trace.CompiledTrace {
	n := uint64(mb) << 20 / 16
	runs := make([]trace.Run, n)
	rng := uint64(0x9E3779B97F4A7C15)
	for i := range runs {
		rng = rng*6364136223846793005 + 1442695040888963407
		r := rng >> 16
		runs[i] = trace.Run{Skip: r % 4, Line: 1<<32 + r%(1<<22)}
	}
	return trace.NewCompiled(runs, 17)
}

// replayChecksum drains src for exactly instr instructions and hashes the
// stream. Replay sources pad with compute no-ops after exhaustion, so the
// caller's instruction count is the termination condition — the same
// contract the engine runs under.
func replayChecksum(src workload.RunSource, instr uint64) string {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	var done uint64
	for done < instr {
		limit := instr - done
		if limit > 1<<20 {
			limit = 1 << 20
		}
		skipped, addr, mem := src.NextRun(int(limit))
		done += uint64(skipped)
		if mem {
			done++
			put(uint64(skipped))
			put(addr)
		}
	}
	put(done)
	return fmt.Sprintf("%016x", h.Sum64())
}

// traceOpener abstracts one replay path: open the file, surface the first
// run (openFirst), and hand back a source for the full replay pass plus a
// cleanup. Open cost and replay cost are measured on separate invocations so
// page-cache warmth is the only state they share.
type traceOpener struct {
	format string
	path   string
	open   func(path string) (workload.RunSource, func() error, error)
}

func traceOpeners(dir string) []traceOpener {
	openV1 := func(path string) (workload.RunSource, func() error, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		ct, err := trace.Compile(f)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return trace.NewRunReplay(ct, false, 0), f.Close, nil
	}
	openRead := func(path string) (workload.RunSource, func() error, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		ct, err := trace.ReadCompiled(f)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return trace.NewRunReplay(ct, false, 0), f.Close, nil
	}
	openMmap := func(path string) (workload.RunSource, func() error, error) {
		mt, err := trace.OpenCompiled(path)
		if err != nil {
			return nil, nil, err
		}
		return trace.NewRunReplay(mt.Trace(), false, 0), mt.Close, nil
	}
	openStream := func(path string) (workload.RunSource, func() error, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, nil, err
		}
		fs, err := trace.NewFrameStreamReplay(f, false, 0)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		return fs, f.Close, nil
	}
	return []traceOpener{
		{"v1-compile", filepath.Join(dir, "bench.trc"), openV1},
		{"compiled", filepath.Join(dir, "bench.symc"), openRead},
		{"mmap", filepath.Join(dir, "bench.symc"), openMmap},
		{"compressed", filepath.Join(dir, "bench-z.symc"), openStream},
	}
}

// runTraceBench synthesizes the fixture, writes the three containers, and
// measures every replay path. All four checksums must agree.
func runTraceBench(reps, mb int) []TracePoint {
	dir, err := os.MkdirTemp("", "symbiosched-tracebench-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)

	ct := synthTrace(mb)
	fmt.Fprintf(os.Stderr, "trace: synthesizing %d MiB fixture (%d runs, %d instructions)\n",
		mb, ct.MemRefs(), ct.Instructions())
	writeWith := func(name string, write func(f *os.File) error) {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			fatal(err)
		}
		if err := write(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	writeWith("bench.trc", func(f *os.File) error { return trace.WriteV1(f, ct) })
	writeWith("bench.symc", func(f *os.File) error { return trace.WriteCompiled(f, ct) })
	writeWith("bench-z.symc", func(f *os.File) error { return trace.WriteCompiledFrames(f, ct, 0, 0) })

	instr, refs := ct.Instructions(), ct.MemRefs()
	residentMB := float64(refs*16) / (1 << 20)
	ct = nil // the benchmark reads the files, not the fixture

	var points []TracePoint
	for _, op := range traceOpeners(dir) {
		st, err := os.Stat(op.path)
		if err != nil {
			fatal(err)
		}
		pt := TracePoint{Format: op.format, FileMB: float64(st.Size()) / (1 << 20), MemRefs: refs}

		// Open-to-first-run: open, pull one run, close. One untimed warm-up
		// pass loads the page cache so all formats are measured warm.
		opens := make([]float64, 0, reps)
		for s := -1; s < reps; s++ {
			start := time.Now()
			src, cleanup, err := op.open(op.path)
			if err != nil {
				fatal(fmt.Errorf("trace %s: %w", op.format, err))
			}
			if _, _, mem := src.NextRun(1 << 20); !mem {
				fatal(fmt.Errorf("trace %s: no first run", op.format))
			}
			ms := float64(time.Since(start).Nanoseconds()) / 1e6
			cleanup()
			if s >= 0 {
				opens = append(opens, ms)
			}
		}
		pt.OpenP50Ms, pt.OpenP99Ms = percentiles(opens)

		// Full replay pass: best of 3, so a page-cache hiccup cannot mark a
		// fast path slow.
		for s := 0; s < 3; s++ {
			src, cleanup, err := op.open(op.path)
			if err != nil {
				fatal(err)
			}
			start := time.Now()
			sum := replayChecksum(src, instr)
			secs := time.Since(start).Seconds()
			cleanup()
			if pt.Checksum == "" {
				pt.Checksum = sum
			} else if sum != pt.Checksum {
				fatal(fmt.Errorf("trace %s: replay not deterministic (%s vs %s)", op.format, sum, pt.Checksum))
			}
			if mbps := residentMB / secs; mbps > pt.ReplayMBps {
				pt.ReplayMBps = mbps
			}
		}

		points = append(points, pt)
		fmt.Fprintf(os.Stderr, "trace %-10s: %7.1f MiB file, open p50 %8.3fms p99 %8.3fms, replay %7.0f MiB/s\n",
			op.format, pt.FileMB, pt.OpenP50Ms, pt.OpenP99Ms, pt.ReplayMBps)
	}

	for _, pt := range points[1:] {
		if pt.Checksum != points[0].Checksum {
			fatal(fmt.Errorf("trace: %s replays a different stream than %s (%s vs %s) — do not record this build",
				pt.Format, points[0].Format, pt.Checksum, points[0].Checksum))
		}
	}
	return points
}

// checkTracePoints is the -check extension for the trace benchmark: points
// are matched by format and fixture size. Checksums must agree exactly —
// they certify all four paths replay one identical stream — and the
// open-to-first-run p50 is tolerance-gated when it is large enough to
// measure reliably (≥10ms; the mmap path opens in microseconds, where the
// gate would only amplify timer noise). Throughput is informational.
func checkTracePoints(base, cur []TracePoint, tolerance float64) bool {
	type key struct {
		format string
		refs   uint64
	}
	byKey := map[key]TracePoint{}
	for _, pt := range base {
		byKey[key{pt.Format, pt.MemRefs}] = pt
	}
	ok := true
	matched := 0
	for _, pt := range cur {
		ref, found := byKey[key{pt.Format, pt.MemRefs}]
		if !found {
			continue
		}
		matched++
		if ref.Checksum != pt.Checksum {
			fmt.Fprintf(os.Stderr, "bench: trace %s: replay checksum mismatch (%s vs baseline %s) — the replayed stream changed, record a new baseline before gating on time\n",
				pt.Format, pt.Checksum, ref.Checksum)
			ok = false
			continue
		}
		if ref.OpenP50Ms >= 10 && pt.OpenP50Ms > ref.OpenP50Ms*(1+tolerance) {
			fmt.Fprintf(os.Stderr, "bench: trace REGRESSION: %s open p50 %.1fms vs baseline %.1fms (%+.1f%%, tolerance %.0f%%)\n",
				pt.Format, pt.OpenP50Ms, ref.OpenP50Ms,
				100*(pt.OpenP50Ms/ref.OpenP50Ms-1), 100*tolerance)
			ok = false
		}
	}
	if ok && matched > 0 {
		fmt.Printf("bench: trace ok: %d points, checksums identical\n", matched)
	}
	return ok
}
