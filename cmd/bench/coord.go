package main

import (
	"fmt"
	"os"

	"symbiosched/internal/coordctl"
)

// Coordinator service benchmark: the load-smoke harness from
// internal/coordctl drives one journaled daemon with a fleet of concurrent
// fake workers over real HTTP and reports protocol throughput (lease
// requests per second) and round-trip latency percentiles. Shards are
// fabricated (header-valid, physics-free), so the measured path is the
// coordinator itself — mutex, lease table, validation, journal fsync — not
// simulation.
//
// These points are recorded for trend inspection but deliberately NOT gated
// by -check: the numbers are dominated by loopback HTTP and fsync latency,
// both of which vary wildly across CI hosts, so a tolerance tight enough to
// matter would flake and one loose enough not to flake would not gate.

// CoordPoint is one fleet-size measurement of the coordinator service.
type CoordPoint struct {
	Workers         int     `json:"workers"`
	Shards          int     `json:"shards"`
	DurationSec     float64 `json:"duration_sec"`
	LeaseRequests   int     `json:"lease_requests"`
	LeasesPerSec    float64 `json:"leases_per_sec"`
	LeaseP50Micros  float64 `json:"lease_p50_micros"`
	LeaseP99Micros  float64 `json:"lease_p99_micros"`
	SubmitP50Micros float64 `json:"submit_p50_micros"`
	SubmitP99Micros float64 `json:"submit_p99_micros"`
	JournalBytes    int64   `json:"journal_bytes"`
}

// runCoordBench measures the coordinator daemon at the given fleet sizes
// (each with `shards` shards) and prints one line per point.
func runCoordBench(fleets []int, shards int) []CoordPoint {
	var out []CoordPoint
	for _, workers := range fleets {
		res, err := coordctl.LoadSmoke(coordctl.LoadSmokeOptions{Workers: workers, Shards: shards})
		if err != nil {
			fatal(fmt.Errorf("coordinator bench (%d workers): %w", workers, err))
		}
		p := CoordPoint{
			Workers:         res.Workers,
			Shards:          res.Shards,
			DurationSec:     res.DurationSec,
			LeaseRequests:   res.LeaseRequests,
			LeasesPerSec:    res.LeasesPerSec,
			LeaseP50Micros:  res.LeaseP50Micros,
			LeaseP99Micros:  res.LeaseP99Micros,
			SubmitP50Micros: res.SubmitP50Micros,
			SubmitP99Micros: res.SubmitP99Micros,
			JournalBytes:    res.JournalBytes,
		}
		fmt.Fprintf(os.Stderr,
			"coord: %3d workers, %d shards: %7.0f lease req/s, lease p50/p99 %5.0f/%6.0fµs, submit p50/p99 %5.0f/%6.0fµs, journal %d B\n",
			p.Workers, p.Shards, p.LeasesPerSec, p.LeaseP50Micros, p.LeaseP99Micros,
			p.SubmitP50Micros, p.SubmitP99Micros, p.JournalBytes)
		out = append(out, p)
	}
	return out
}
