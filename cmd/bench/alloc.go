package main

import (
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"time"

	"symbiosched/internal/alloc"
	"symbiosched/internal/experiments"
	"symbiosched/internal/graph"
	"symbiosched/internal/kernel"
)

// The allocator microbenchmark: how long one allocation decision takes as
// the thread count grows. Three paths per P:
//
//   - dense:  the pre-sparsification baseline (n×n matrix + recursive
//     bisection), forced via AllocateDense. Scales ~n⁴; capped by
//     -allocdense because P=1024 costs minutes per invocation.
//   - sparse: the top-m sparse build + multilevel partition the policies use
//     beyond the 64-thread threshold.
//   - repair: the incremental path — 8 signature deltas applied with
//     UpdateWeight, then RepairPartition. The steady-state per-quantum cost
//     once a partition exists.
//
// Latency is reported as p50/p99 over the invocations; the checksum (an FNV
// hash of the canonical decision) is a determinism gate — two builds whose
// checksums differ did not compute the same allocation and must not be
// time-compared.

// allocPs is the P-sweep; k = P/16 cores keeps the per-core load constant.
var allocPs = []int{64, 256, 1024, 4096}

// AllocPoint is one (path, P) cell of the allocator benchmark.
type AllocPoint struct {
	Path        string  `json:"path"` // dense | sparse | repair
	P           int     `json:"p"`
	K           int     `json:"k"`
	Invocations int     `json:"invocations"`
	P50Micros   float64 `json:"p50_micros"`
	P99Micros   float64 `json:"p99_micros"`
	// Checksum hashes the canonical allocation decision (or the repaired
	// assignment); a determinism gate like the sweep's improvement
	// percentages.
	Checksum string `json:"checksum"`
	// CutWeight is the partition quality on the sparse paths (informational;
	// covered by Checksum for gating).
	CutWeight float64 `json:"cut_weight,omitempty"`
}

// runAllocBench measures every (path, P) point and streams progress to
// stderr. denseMax caps the dense baseline's P (0 disables it entirely).
func runAllocBench(reps, denseMax int) []AllocPoint {
	var points []AllocPoint
	for _, p := range allocPs {
		k := p / 16
		views := experiments.SynthAllocViews(p, k)

		if p <= denseMax {
			n := reps
			if p >= 512 {
				n = 1 // minutes per invocation: measure once, flag it
			}
			points = append(points, measureAlloc("dense", p, k, n, func() (alloc.Mapping, float64) {
				return alloc.WeightedInterferenceGraph{}.AllocateDense(views, k), 0
			}))
		}

		points = append(points, measureAlloc("sparse", p, k, reps, func() (alloc.Mapping, float64) {
			s := alloc.SparseInterferenceGraph(views)
			groups := s.PartitionK(k)
			m := make(alloc.Mapping, p)
			var assign []int32
			for core, grp := range groups {
				for _, t := range grp {
					m[t] = core
				}
			}
			assign = make([]int32, p)
			for i, c := range m {
				assign[i] = int32(c)
			}
			return m, s.CutK(assign)
		}))

		points = append(points, measureRepair(p, k, reps, views))
	}
	return points
}

// measureAlloc times fn over n invocations and hashes its decision.
func measureAlloc(path string, p, k, n int, fn func() (alloc.Mapping, float64)) AllocPoint {
	times := make([]float64, 0, n)
	var m alloc.Mapping
	var cut float64
	for i := 0; i < n; i++ {
		start := time.Now()
		m, cut = fn()
		times = append(times, float64(time.Since(start).Nanoseconds())/1e3)
	}
	pt := AllocPoint{
		Path: path, P: p, K: k, Invocations: n,
		Checksum: mappingChecksum(m.Canonical()), CutWeight: cut,
	}
	pt.P50Micros, pt.P99Micros = percentiles(times)
	fmt.Fprintf(os.Stderr, "alloc %-6s P=%-4d k=%-3d: p50 %.0fµs p99 %.0fµs (%d invocations)\n",
		path, p, k, pt.P50Micros, pt.P99Micros, n)
	return pt
}

// measureRepair times the incremental path: per invocation, a fresh graph
// and partition, then 8 weight deltas + RepairPartition. Every invocation
// replays the IDENTICAL delta schedule — the timings are repeated samples
// of one decision, and the checksum is invariant to -allocreps.
func measureRepair(p, k, n int, views []kernel.View) AllocPoint {
	times := make([]float64, 0, n)
	var pt *graph.Partition
	var s *graph.Sparse
	part := graph.NewPartitioner()
	touched := make([]int, 8)
	for i := 0; i < n; i++ {
		s = alloc.SparseInterferenceGraph(views)
		pt = s.NewPartition(k)
		start := time.Now()
		for t := range touched {
			v := (131 + t*17) % p
			touched[t] = v
			cols, wts := s.Row(v)
			if len(cols) > 0 {
				e := t % len(cols)
				pt.UpdateWeight(s, v, int(cols[e]), wts[e]*1.5+0.1)
			}
		}
		part.Repair(s, pt, touched)
		times = append(times, float64(time.Since(start).Nanoseconds())/1e3)
	}
	out := AllocPoint{
		Path: "repair", P: p, K: k, Invocations: n,
		Checksum: assignChecksum(pt.Assign()), CutWeight: pt.Cut(),
	}
	out.P50Micros, out.P99Micros = percentiles(times)
	fmt.Fprintf(os.Stderr, "alloc %-6s P=%-4d k=%-3d: p50 %.0fµs p99 %.0fµs (%d invocations)\n",
		"repair", p, k, out.P50Micros, out.P99Micros, n)
	return out
}

func percentiles(times []float64) (p50, p99 float64) {
	sort.Float64s(times)
	p50 = times[len(times)/2]
	i99 := (99*len(times) + 99) / 100 // ceil(0.99n), 1-based
	if i99 > len(times) {
		i99 = len(times)
	}
	p99 = times[i99-1]
	return p50, p99
}

func mappingChecksum(m alloc.Mapping) string {
	h := fnv.New64a()
	var b [8]byte
	for _, c := range m {
		for i := range b {
			b[i] = byte(c >> (8 * i))
		}
		h.Write(b[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func assignChecksum(assign []int32) string {
	m := make(alloc.Mapping, len(assign))
	for i, c := range assign {
		m[i] = int(c)
	}
	return mappingChecksum(m.Canonical())
}

// checkAllocPoints is the -check extension for the allocator benchmark:
// compare every (path, P, k) point present in both the baseline's newest
// entry and the measured entry. Checksums must match exactly; p50 latency
// may not regress more than the tolerance. Returns false on violation.
func checkAllocPoints(base, cur []AllocPoint, tolerance float64) bool {
	type key struct {
		path string
		p, k int
	}
	byKey := map[key]AllocPoint{}
	for _, pt := range base {
		byKey[key{pt.Path, pt.P, pt.K}] = pt
	}
	ok := true
	matched := 0
	for _, pt := range cur {
		ref, found := byKey[key{pt.Path, pt.P, pt.K}]
		if !found {
			continue
		}
		matched++
		if ref.Checksum != pt.Checksum {
			fmt.Fprintf(os.Stderr, "bench: alloc %s P=%d k=%d: determinism checksum mismatch (%s vs baseline %s) — the allocator's decision changed, record a new baseline before gating on time\n",
				pt.Path, pt.P, pt.K, pt.Checksum, ref.Checksum)
			ok = false
			continue
		}
		// Sub-millisecond points are timer/scheduler noise on shared
		// runners: checksum-gated above, but not latency-gated.
		if ref.P50Micros >= 1000 && pt.P50Micros > ref.P50Micros*(1+tolerance) {
			fmt.Fprintf(os.Stderr, "bench: alloc REGRESSION: %s P=%d k=%d p50 %.0fµs vs baseline %.0fµs (%+.1f%%, tolerance %.0f%%)\n",
				pt.Path, pt.P, pt.K, pt.P50Micros, ref.P50Micros,
				100*(pt.P50Micros/ref.P50Micros-1), 100*tolerance)
			ok = false
		}
	}
	if ok && matched > 0 {
		fmt.Printf("bench: alloc ok: %d points within %.0f%% of baseline, checksums identical\n",
			matched, 100*tolerance)
	}
	return ok
}
