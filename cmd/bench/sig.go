package main

import (
	"fmt"
	"hash/fnv"
	"os"
	"time"

	"symbiosched/internal/alloc"
	"symbiosched/internal/bloom"
	"symbiosched/internal/kernel"
	"symbiosched/internal/monitor"
)

// The signature-path microbenchmark: what one context switch costs the
// signature unit, and what one full monitor quantum costs the control loop,
// as the thread count P and core count N grow. Two capture modes per point:
//
//   - eager: the pre-lazy baseline — the unit computes the full (2+N)-entry
//     symbiosis record at every switch, O(N · filter words) each.
//   - lazy:  the default — a switch snapshots the RBV and takes filter-
//     version references, O(words + N); the symbiosis vectors materialize on
//     the first read (here: inside the monitor quantum) and are memoized.
//
// Both units replay the IDENTICAL fill/evict/switch schedule, and the
// materialized records are hashed at the end: a mismatch between the two
// modes aborts the benchmark, so every recorded point is also a parity
// check. The monitor quantum is measured on the lazy unit — snapshot
// (including materialization), smoothing, allocation — with fresh captures
// before every invocation, the way a live control loop pays it.
//
// Latencies are p50 over -sigreps samples; the checksums (FNV of the
// materialized records and of the monitor's mapping decision) are
// determinism gates exactly like the sweep's improvement percentages.

// sigGrid is the (threads, cores) sweep; geometry is the paper's 4 MB
// 16-way L2 (4096 sets) with the default 1/4 set sampling.
var sigGrid = [][2]int{{8, 2}, {32, 4}, {64, 8}, {256, 16}, {1024, 64}}

// SigPoint is one (P, N) cell of the signature benchmark.
type SigPoint struct {
	P        int `json:"p"`        // threads
	N        int `json:"n"`        // cores
	Switches int `json:"switches"` // timed switches per sample
	// Per-switch capture cost under each mode, p50 over samples.
	EagerNsPerSwitch float64 `json:"eager_ns_per_switch"`
	LazyNsPerSwitch  float64 `json:"lazy_ns_per_switch"`
	Speedup          float64 `json:"speedup"`
	// Full monitor quantum on the lazy unit: snapshot + smooth + allocate.
	// Min is the gated statistic (robust to ambient load, like the sweep's
	// min_seconds); p50/p99 show the spread.
	MonitorMinMicros float64 `json:"monitor_min_micros"`
	MonitorP50Micros float64 `json:"monitor_p50_micros"`
	MonitorP99Micros float64 `json:"monitor_p99_micros"`
	// SigChecksum hashes every thread's materialized record (identical for
	// both modes by construction — verified before the point is emitted).
	SigChecksum string `json:"sig_checksum"`
	// Checksum hashes the monitor's final mapping decision.
	Checksum string `json:"checksum"`
}

// sigBench holds one capture mode's replay state.
type sigBench struct {
	unit *bloom.Unit
	sigs []*bloom.Signature
	rng  uint64
	hist []fillRecord // ring of past fills, evicted in FIFO order
	pos  int
}

type fillRecord struct {
	addr     uint64
	set, way int
}

func newSigBench(p, n int, eager bool) *sigBench {
	cfg := bloom.DefaultConfig(bloom.Geometry{Sets: 4096, Ways: 16}, n)
	cfg.CounterBits = 8
	cfg.SampleRate = 4
	cfg.EagerCapture = eager
	return &sigBench{
		unit: bloom.NewUnit(cfg),
		sigs: make([]*bloom.Signature, p),
		rng:  0x9E3779B97F4A7C15,
		hist: make([]fillRecord, 0, 4096),
	}
}

func (b *sigBench) next() uint64 {
	b.rng = b.rng*6364136223846793005 + 1442695040888963407
	return b.rng >> 16
}

// mutate applies one switch's worth of cache traffic for core: two fills and,
// once the history ring is warm, one eviction of the oldest resident line.
func (b *sigBench) mutate(core int) {
	for f := 0; f < 2; f++ {
		r := b.next()
		rec := fillRecord{addr: r, set: int(r % 4096), way: int((r >> 12) % 16)}
		b.unit.OnFill(core, rec.addr, rec.set, rec.way)
		if len(b.hist) < cap(b.hist) {
			b.hist = append(b.hist, rec)
		} else {
			old := b.hist[b.pos]
			b.unit.OnEvict(old.addr, old.set, old.way)
			b.hist[b.pos] = rec
			b.pos = (b.pos + 1) % len(b.hist)
		}
	}
}

// run replays iters mutate+switch steps and returns the wall time of the
// whole batch. The schedule is a pure function of the LCG state, so eager
// and lazy replicas stay in lockstep.
func (b *sigBench) run(n, iters int) time.Duration {
	start := time.Now()
	for i := 0; i < iters; i++ {
		th := i % len(b.sigs)
		core := th % n
		b.mutate(core)
		b.sigs[th] = b.unit.ContextSwitchInto(core, b.sigs[th])
	}
	return time.Since(start)
}

// checksum materializes every captured record and hashes its contents.
func (b *sigBench) checksum() string {
	h := fnv.New64a()
	var w [8]byte
	put := func(v uint64) {
		for i := range w {
			w[i] = byte(v >> (8 * i))
		}
		h.Write(w[:])
	}
	for _, sig := range b.sigs {
		if sig == nil {
			put(^uint64(0))
			continue
		}
		sig.Materialize()
		put(uint64(sig.LastCore))
		put(uint64(sig.Occupancy))
		for j := range sig.Symbiosis {
			put(uint64(sig.Symbiosis[j]))
			put(uint64(sig.Overlap[j]))
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// sampleSwitches runs one sample of the per-switch measurement: a fresh
// unit, an untimed warm batch (steady occupancy, version pools populated), a
// timed batch, and the checksum of the final captured records. Every sample
// replays the IDENTICAL schedule from the identical starting state — the
// timings are repeated samples of one computation and the checksum is
// invariant to -sigreps, matching the allocator benchmark's protocol.
func sampleSwitches(p, n, iters int, eager bool) (nsPerSwitch float64, sum string) {
	b := newSigBench(p, n, eager)
	b.run(n, iters)
	t := b.run(n, iters)
	return float64(t.Nanoseconds()) / float64(iters), b.checksum()
}

// runSigBench measures every (P, N) point of the grid.
func runSigBench(reps int) []SigPoint {
	var points []SigPoint
	for _, cell := range sigGrid {
		p, n := cell[0], cell[1]
		iters := 2 * p
		if iters < 512 {
			iters = 512
		}

		eagerNs := make([]float64, 0, reps)
		lazyNs := make([]float64, 0, reps)
		var eagerSum, lazySum string
		for s := 0; s < reps; s++ {
			ens, esum := sampleSwitches(p, n, iters, true)
			lns, lsum := sampleSwitches(p, n, iters, false)
			eagerNs = append(eagerNs, ens)
			lazyNs = append(lazyNs, lns)
			if s == 0 {
				eagerSum, lazySum = esum, lsum
			} else if esum != eagerSum || lsum != lazySum {
				fatal(fmt.Errorf("sig P=%d N=%d: sample %d not deterministic", p, n, s))
			}
		}
		if eagerSum != lazySum {
			fatal(fmt.Errorf("sig P=%d N=%d: eager and lazy capture disagree (%s vs %s) — the lazy path is broken, do not record this build", p, n, eagerSum, lazySum))
		}

		pt := SigPoint{P: p, N: n, Switches: iters, SigChecksum: lazySum}
		pt.EagerNsPerSwitch, _ = percentiles(eagerNs)
		pt.LazyNsPerSwitch, _ = percentiles(lazyNs)
		if pt.LazyNsPerSwitch > 0 {
			pt.Speedup = pt.EagerNsPerSwitch / pt.LazyNsPerSwitch
		}

		pt.MonitorMinMicros, pt.MonitorP50Micros, pt.MonitorP99Micros, pt.Checksum = measureMonitorQuantum(p, n, iters, reps)
		points = append(points, pt)
		fmt.Fprintf(os.Stderr, "sig   P=%-4d N=%-3d: eager %.0fns lazy %.0fns per switch (%.1fx), monitor min %.0fµs p50 %.0fµs p99 %.0fµs\n",
			p, n, pt.EagerNsPerSwitch, pt.LazyNsPerSwitch, pt.Speedup,
			pt.MonitorMinMicros, pt.MonitorP50Micros, pt.MonitorP99Micros)
	}
	return points
}

// measureMonitorQuantum times the full control-loop step on the lazy unit:
// snapshot with deferred materialization, smoothing, allocation. Like the
// switch samples, every invocation rebuilds the identical state — fresh
// unit, fresh captures for all P threads, fresh monitor — so the mapping
// checksum is a pure function of (P, N), invariant to -sigreps.
func measureMonitorQuantum(p, n, iters, reps int) (min, p50, p99 float64, checksum string) {
	procs := make([]*kernel.Process, p)
	for i := range procs {
		pr := &kernel.Process{ID: i, Name: fmt.Sprintf("t%d", i)}
		pr.Threads = []*kernel.Thread{{ID: i, Proc: pr, Affinity: i % n}}
		procs[i] = pr
	}

	var mapping alloc.Mapping
	var sum string
	times := make([]float64, 0, reps)
	for s := 0; s < reps; s++ {
		b := newSigBench(p, n, false)
		b.run(n, iters) // same warm + capture schedule as the switch samples
		b.run(n, iters)
		for i, pr := range procs {
			pr.Threads[0].Sig = b.sigs[i]
		}
		mo := monitor.New(alloc.WeightedInterferenceGraph{})
		mo.Smoothing = 0.5
		start := time.Now()
		mapping = mo.Observe(procs, n)
		times = append(times, float64(time.Since(start).Nanoseconds())/1e3)
		if cur := mappingChecksum(mapping.Canonical()); s == 0 {
			sum = cur
		} else if cur != sum {
			fatal(fmt.Errorf("sig P=%d N=%d: monitor decision not deterministic", p, n))
		}
	}
	p50, p99 = percentiles(times)
	return times[0], p50, p99, sum // times sorted by percentiles: [0] is min
}

// checkSigPoints is the -check extension for the signature benchmark:
// compare every (P, N) point present in both entries. Both checksums must
// match exactly; the monitor quantum's MINIMUM latency is gated by the
// tolerance when it is large enough to be meaningful (≥1ms) — the quantum
// is measured per invocation with no batch amortization, so its p50 wobbles
// far more than the allocator's on shared hosts, while the min is robust to
// ambient load exactly like the sweep's min_seconds. The per-switch
// nanosecond figures are informational and never latency-gated.
func checkSigPoints(base, cur []SigPoint, tolerance float64) bool {
	type key struct{ p, n int }
	byKey := map[key]SigPoint{}
	for _, pt := range base {
		byKey[key{pt.P, pt.N}] = pt
	}
	ok := true
	matched := 0
	for _, pt := range cur {
		ref, found := byKey[key{pt.P, pt.N}]
		if !found {
			continue
		}
		matched++
		if ref.SigChecksum != pt.SigChecksum || ref.Checksum != pt.Checksum {
			fmt.Fprintf(os.Stderr, "bench: sig P=%d N=%d: determinism checksum mismatch (sig %s/%s vs baseline %s/%s) — the capture or the decision changed, record a new baseline before gating on time\n",
				pt.P, pt.N, pt.SigChecksum, pt.Checksum, ref.SigChecksum, ref.Checksum)
			ok = false
			continue
		}
		if ref.MonitorMinMicros >= 1000 && pt.MonitorMinMicros > ref.MonitorMinMicros*(1+tolerance) {
			fmt.Fprintf(os.Stderr, "bench: sig REGRESSION: P=%d N=%d monitor min %.0fµs vs baseline %.0fµs (%+.1f%%, tolerance %.0f%%)\n",
				pt.P, pt.N, pt.MonitorMinMicros, ref.MonitorMinMicros,
				100*(pt.MonitorMinMicros/ref.MonitorMinMicros-1), 100*tolerance)
			ok = false
		}
	}
	if ok && matched > 0 {
		fmt.Printf("bench: sig ok: %d points, checksums identical\n", matched)
	}
	return ok
}
