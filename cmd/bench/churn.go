package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"symbiosched/internal/alloc"
	"symbiosched/internal/experiments"
)

// The churn microbenchmark: per-event cost of the incremental
// arrival/departure path versus the full rebuild it replaces. One seeded
// Poisson campaign per P; every arrival (alloc.PairWeight scoring + top-m
// selection + graph.InsertAndRepair), departure (graph.RemoveAndRepair) and
// aging refresh (monitor.Ager.Refresh + local repair) is timed through the
// driver's observer, which never feeds the report — the campaign checksum
// is a pure function of the seed and gates determinism exactly like the
// sweep's improvement percentages.
//
// The headline derived number is the rebuild-vs-repair crossover: how many
// structural events must land in one monitor quantum before rebuilding the
// graph and partition once is cheaper than absorbing each event
// incrementally. The incremental path wins below it; the campaign's
// drift-triggered fallback handles the tail above it.

// churnPs is the population sweep; k = P/16 matches the allocator bench.
var churnPs = []int{256, 1024}

// ChurnPoint is one (P) row of the churn benchmark.
type ChurnPoint struct {
	Mode       string `json:"mode"`
	P          int    `json:"p"`
	K          int    `json:"k"`
	Quanta     int    `json:"quanta"`
	Arrivals   int    `json:"arrivals"`
	Departures int    `json:"departures"`
	Migrations int    `json:"migrations"`
	Rebuilds   int    `json:"rebuilds"`
	// MigPerEvent is placement stability: reassignments per structural
	// event (arrivals + departures), the §4 migration-cost proxy.
	MigPerEvent float64 `json:"mig_per_event"`
	InsertP50   float64 `json:"insert_p50_micros"`
	InsertP99   float64 `json:"insert_p99_micros"`
	RemoveP50   float64 `json:"remove_p50_micros"`
	RemoveP99   float64 `json:"remove_p99_micros"`
	AgeP50      float64 `json:"age_p50_micros"`
	AgeP99      float64 `json:"age_p99_micros"`
	// RebuildMicros is the median cost of the path churn avoids: a fresh
	// top-m build plus multilevel partition at this P.
	RebuildMicros float64 `json:"rebuild_micros"`
	// CrossoverEventsPerQuantum = RebuildMicros / median event cost: the
	// event rate above which one rebuild per quantum is cheaper than
	// per-event repair.
	CrossoverEventsPerQuantum float64 `json:"crossover_events_per_quantum"`
	// Checksum is the campaign's deterministic report checksum.
	Checksum string `json:"checksum"`
}

// runChurnBench measures one campaign per P and streams progress to stderr.
func runChurnBench(quanta int) []ChurnPoint {
	var points []ChurnPoint
	for _, p := range churnPs {
		k := p / 16
		byKind := map[string][]float64{}
		cfg := experiments.ChurnConfig{
			Mode:        "poisson",
			Seed:        42,
			P0:          p,
			Cores:       k,
			Quanta:      quanta,
			ArrivalRate: 2,
			MeanLife:    float64(p),       // population hovers near P0
			RefreshFrac: 0.5 / float64(p), // one thread per quantum: per-refresh timing
			FragLimit:   0.6,
			OnEvent: func(kind string, d time.Duration) {
				byKind[kind] = append(byKind[kind], float64(d.Nanoseconds())/1e3)
			},
		}
		rep := experiments.RunChurn(cfg)

		// The cost the incremental path avoids: fresh top-m build +
		// multilevel partition over the same population scale.
		views := experiments.SynthAllocViews(p, k)
		rebuilds := make([]float64, 0, 5)
		for i := 0; i < 5; i++ {
			start := time.Now()
			s := alloc.SparseInterferenceGraph(views)
			s.PartitionK(k)
			rebuilds = append(rebuilds, float64(time.Since(start).Nanoseconds())/1e3)
		}
		sort.Float64s(rebuilds)

		pt := ChurnPoint{
			Mode: cfg.Mode, P: p, K: k, Quanta: quanta,
			Arrivals: rep.Arrivals, Departures: rep.Departures,
			Migrations: rep.Migrations, Rebuilds: rep.Rebuilds,
			RebuildMicros: rebuilds[len(rebuilds)/2],
			Checksum:      rep.Checksum,
		}
		if ev := rep.Arrivals + rep.Departures; ev > 0 {
			pt.MigPerEvent = float64(rep.Migrations) / float64(ev)
		}
		pt.InsertP50, pt.InsertP99 = pctOrZero(byKind["arrive"])
		pt.RemoveP50, pt.RemoveP99 = pctOrZero(byKind["depart"])
		pt.AgeP50, pt.AgeP99 = pctOrZero(byKind["refresh"])
		event := pt.InsertP50
		if pt.RemoveP50 > event {
			event = pt.RemoveP50 // conservative: the slower event kind
		}
		if event > 0 {
			pt.CrossoverEventsPerQuantum = pt.RebuildMicros / event
		}
		points = append(points, pt)
		fmt.Fprintf(os.Stderr,
			"churn P=%-4d k=%-3d: insert p50 %.1fµs  remove p50 %.1fµs  age p50 %.1fµs  rebuild %.0fµs  (%.0fx insert, crossover %.0f events/quantum, %.2f migrations/event)\n",
			p, k, pt.InsertP50, pt.RemoveP50, pt.AgeP50, pt.RebuildMicros,
			pt.RebuildMicros/pt.InsertP50, pt.CrossoverEventsPerQuantum, pt.MigPerEvent)
	}
	return points
}

// pctOrZero is percentiles with an empty-sample guard: a campaign with no
// events of one kind reports zeros rather than panicking.
func pctOrZero(times []float64) (p50, p99 float64) {
	if len(times) == 0 {
		return 0, 0
	}
	return percentiles(times)
}

// checkChurnPoints is the -check extension for the churn benchmark:
// campaign checksums must match exactly; latency gates only apply to points
// slow enough to be signal (≥1ms), same policy as the allocator points.
func checkChurnPoints(base, cur []ChurnPoint, tolerance float64) bool {
	type key struct {
		mode      string
		p, quanta int
	}
	byKey := map[key]ChurnPoint{}
	for _, pt := range base {
		byKey[key{pt.Mode, pt.P, pt.Quanta}] = pt
	}
	ok := true
	matched := 0
	for _, pt := range cur {
		ref, found := byKey[key{pt.Mode, pt.P, pt.Quanta}]
		if !found {
			continue
		}
		matched++
		if ref.Checksum != pt.Checksum {
			fmt.Fprintf(os.Stderr, "bench: churn P=%d: campaign checksum mismatch (%s vs baseline %s) — the churn loop's decisions changed, record a new baseline before gating on time\n",
				pt.P, pt.Checksum, ref.Checksum)
			ok = false
			continue
		}
		if ref.InsertP50 >= 1000 && pt.InsertP50 > ref.InsertP50*(1+tolerance) {
			fmt.Fprintf(os.Stderr, "bench: churn REGRESSION: P=%d insert p50 %.0fµs vs baseline %.0fµs (tolerance %.0f%%)\n",
				pt.P, pt.InsertP50, ref.InsertP50, 100*tolerance)
			ok = false
		}
		if ref.RebuildMicros >= 1000 && pt.RebuildMicros > ref.RebuildMicros*(1+tolerance) {
			fmt.Fprintf(os.Stderr, "bench: churn REGRESSION: P=%d rebuild %.0fµs vs baseline %.0fµs (tolerance %.0f%%)\n",
				pt.P, pt.RebuildMicros, ref.RebuildMicros, 100*tolerance)
			ok = false
		}
	}
	if ok && matched > 0 {
		fmt.Printf("bench: churn ok: %d campaigns, checksums identical\n", matched)
	}
	return ok
}
