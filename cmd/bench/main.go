// Command bench is the reproducible performance harness for the simulator's
// headline workload: the Figure 10 sweep (every 4-subset of a 6-benchmark
// pool, two-phase methodology) at the Quick scale — the same work as
// BenchmarkFigure10 in bench_test.go, but self-timed and recorded to a JSON
// artifact so before/after comparisons survive in the repository.
//
// Protocol: the sweep runs -reps times in one process; the minimum wall time
// is the headline number (robust to ambient load on shared hosts), and the
// per-rep times are kept so noise is visible. The sweep's avg/max
// improvement metrics are recorded as a determinism checksum: two builds
// that disagree on them are not running the same experiment, and their
// times must not be compared.
//
// Usage:
//
//	go run ./cmd/bench -label after -out results/BENCH_2026-08-06.json
//
// When -out names an existing file produced by this tool, the new entry is
// appended, so running the tool once per build accumulates a comparison
// (build the tool at the baseline commit and point -out at the same file).
//
// Regression gate: `bench -check results/BENCH_<date>.json -tolerance 0.15`
// measures as usual, then compares against the newest entry of the baseline
// file and exits non-zero when the sweep is more than the tolerance slower
// (or when the determinism checksums diverge — different experiments must
// never be compared). In check mode no artifact is written unless -out is
// given explicitly.
//
// Allocator microbenchmark: -alloc adds the dense/sparse/repair allocation
// latency sweep (P ∈ {64, 256, 1024, 4096}, k = P/16) to the entry;
// -alloconly runs just that sweep. See alloc.go for the protocol and the
// -allocreps/-allocdense knobs. The -check gate extends to allocator points
// present in both entries.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"symbiosched/internal/alloc"
	"symbiosched/internal/experiments"
	"symbiosched/internal/workload"
)

// Report is the on-disk artifact: one file, many labelled entries.
type Report struct {
	Benchmark string  `json:"benchmark"`
	Protocol  string  `json:"protocol"`
	Entries   []Entry `json:"entries"`
}

// Entry is one measured build.
type Entry struct {
	Label      string    `json:"label"`
	Date       string    `json:"date"`
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Reps       []float64 `json:"rep_seconds"`
	MinSeconds float64   `json:"min_seconds"`
	// Determinism checksum: the experiment's own outputs. Entries whose
	// checksums differ are not comparable.
	AvgImprovementPct float64 `json:"avg_improvement_pct"`
	MaxImprovementPct float64 `json:"max_improvement_pct"`
	Note              string  `json:"note,omitempty"`
	// Alloc holds the allocator microbenchmark points when -alloc was given;
	// see cmd/bench/alloc.go.
	Alloc []AllocPoint `json:"alloc,omitempty"`
	// Sig holds the signature-path microbenchmark points when -sig was
	// given; see cmd/bench/sig.go.
	Sig []SigPoint `json:"sig,omitempty"`
	// Trace holds the trace I/O benchmark points when -trace was given;
	// see cmd/bench/trace.go.
	Trace []TracePoint `json:"trace,omitempty"`
	// Coord holds the coordinator service benchmark points when -coord was
	// given; see cmd/bench/coord.go. Recorded but never gated by -check.
	Coord []CoordPoint `json:"coord,omitempty"`
	// Churn holds the arrival/departure benchmark points when -churn was
	// given; see cmd/bench/churn.go.
	Churn []ChurnPoint `json:"churn,omitempty"`
	// RepsMP1/MinSecondsMP1 record the same sweep pinned to GOMAXPROCS=1
	// when -mp1 was given, so single-core and native-parallel numbers live
	// in one entry (on a 1-vCPU host the two coincide; recording both keeps
	// the protocol honest when the host grows cores).
	RepsMP1       []float64 `json:"rep_seconds_mp1,omitempty"`
	MinSecondsMP1 float64   `json:"min_seconds_mp1,omitempty"`
}

func main() {
	reps := flag.Int("reps", 3, "sweep repetitions (minimum wall time is reported)")
	label := flag.String("label", "HEAD", "entry label, e.g. a commit id")
	out := flag.String("out", "", "JSON artifact path (default results/BENCH_<date>.json); appended to if it exists")
	note := flag.String("note", "", "free-form provenance note stored with the entry")
	mixSize := flag.Int("mixsize", 4, "benchmarks per mix")
	shards := flag.Int("shards", 1, "run the sweep as N sequential in-process shards and merge them (1 = direct sweep); exercises the shard protocol end to end")
	check := flag.String("check", "", "baseline bench JSON: compare against its newest entry and exit non-zero on regression")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional slowdown vs the baseline in -check mode")
	allocBench := flag.Bool("alloc", false, "also run the allocator microbenchmark (dense/sparse/repair latency across the P-sweep)")
	allocOnly := flag.Bool("alloconly", false, "run only the allocator microbenchmark, skipping the Figure 10 sweep")
	allocReps := flag.Int("allocreps", 21, "allocator benchmark invocations per point (p50/p99 are computed over these)")
	allocDense := flag.Int("allocdense", 256, "largest P at which the dense allocator baseline is measured (0 disables; P=1024 costs minutes per invocation)")
	sigBench := flag.Bool("sig", false, "also run the signature-path microbenchmark (per-switch capture cost eager vs lazy, monitor-quantum latency across the (P,N) grid)")
	sigOnly := flag.Bool("sigonly", false, "run only the signature-path microbenchmark, skipping the Figure 10 sweep")
	sigReps := flag.Int("sigreps", 7, "signature benchmark samples per point (p50 is computed over these)")
	traceBench := flag.Bool("trace", false, "also run the trace I/O benchmark (open-to-first-run and replay throughput, v1 vs compiled vs mmap vs compressed)")
	traceOnly := flag.Bool("traceonly", false, "run only the trace I/O benchmark, skipping the Figure 10 sweep")
	traceReps := flag.Int("tracereps", 11, "trace benchmark open samples per format (p50/p99 are computed over these)")
	traceMB := flag.Int("tracemb", 128, "trace benchmark fixture size in MiB of resident run records")
	coordBench := flag.Bool("coord", false, "also run the coordinator service benchmark (concurrent fake-worker fleet over real HTTP against one journaled daemon)")
	coordOnly := flag.Bool("coordonly", false, "run only the coordinator service benchmark, skipping the Figure 10 sweep")
	coordWorkers := flag.Int("coordworkers", 50, "coordinator benchmark fleet size (concurrent fake workers)")
	coordShards := flag.Int("coordshards", 64, "coordinator benchmark campaign shard count")
	churnBench := flag.Bool("churn", false, "also run the churn benchmark (per-event arrival/departure/aging cost vs full rebuild, Poisson campaigns at P in {256, 1024})")
	churnOnly := flag.Bool("churnonly", false, "run only the churn benchmark, skipping the Figure 10 sweep")
	churnQuanta := flag.Int("churnquanta", 200, "churn benchmark campaign length in monitor quanta")
	mp1 := flag.Bool("mp1", false, "after the native-GOMAXPROCS reps, repeat the sweep pinned to GOMAXPROCS=1 and record both in the entry")
	flag.Parse()
	if *allocOnly {
		*allocBench = true
	}
	if *sigOnly {
		*sigBench = true
	}
	if *traceOnly {
		*traceBench = true
	}
	if *coordOnly {
		*coordBench = true
	}
	if *churnOnly {
		*churnBench = true
	}
	microOnly := *allocOnly || *sigOnly || *traceOnly || *coordOnly || *churnOnly

	cfg := experiments.Quick()
	pool := pool()
	policy := alloc.WeightedInterferenceGraph{}

	// runSweep is one rep: either the direct sweep or the full shard
	// protocol (SweepShard × N + MergeShards). Both must produce identical
	// determinism checksums — a -shards entry that disagrees with a direct
	// entry indicates a broken merge, not a different experiment.
	runSweep := func() experiments.ImprovementReport {
		if *shards <= 1 {
			return cfg.Sweep(pool, policy, *mixSize, nil)
		}
		parts := make([]experiments.Shard, *shards)
		for i := range parts {
			sc := cfg
			sc.ShardIndex, sc.ShardTotal = i, *shards
			s, err := sc.SweepShard(pool, policy, *mixSize, nil)
			if err != nil {
				fatal(err)
			}
			parts[i] = s
		}
		rep, err := experiments.MergeShards(parts)
		if err != nil {
			fatal(err)
		}
		return rep
	}

	e := Entry{
		Label:      *label,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		MinSeconds: -1,
		Note:       *note,
	}
	if *shards > 1 {
		tag := fmt.Sprintf("sharded %d-way in process, merged", *shards)
		if e.Note == "" {
			e.Note = tag
		} else {
			e.Note += "; " + tag
		}
	}
	if !microOnly {
		for i := 0; i < *reps; i++ {
			start := time.Now()
			rep := runSweep()
			secs := time.Since(start).Seconds()
			e.Reps = append(e.Reps, secs)
			if e.MinSeconds < 0 || secs < e.MinSeconds {
				e.MinSeconds = secs
			}
			e.AvgImprovementPct = 100 * rep.Overall()
			e.MaxImprovementPct = 100 * rep.MaxOverall()
			fmt.Fprintf(os.Stderr, "rep %d/%d: %.3fs (avg %.3f%%, max %.2f%%)\n",
				i+1, *reps, secs, e.AvgImprovementPct, e.MaxImprovementPct)
		}
		if *mp1 {
			native := runtime.GOMAXPROCS(1)
			for i := 0; i < *reps; i++ {
				start := time.Now()
				rep := runSweep()
				secs := time.Since(start).Seconds()
				e.RepsMP1 = append(e.RepsMP1, secs)
				if e.MinSecondsMP1 == 0 || secs < e.MinSecondsMP1 {
					e.MinSecondsMP1 = secs
				}
				// The sweep is deterministic regardless of parallelism; a
				// GOMAXPROCS=1 run that disagrees is a concurrency bug.
				if 100*rep.Overall() != e.AvgImprovementPct || 100*rep.MaxOverall() != e.MaxImprovementPct {
					fatal(fmt.Errorf("GOMAXPROCS=1 sweep diverged from native run: avg %.12f%% vs %.12f%%",
						100*rep.Overall(), e.AvgImprovementPct))
				}
				fmt.Fprintf(os.Stderr, "rep %d/%d (GOMAXPROCS=1): %.3fs\n", i+1, *reps, secs)
			}
			runtime.GOMAXPROCS(native)
		}
	}
	if *allocBench {
		e.Alloc = runAllocBench(*allocReps, *allocDense)
	}
	if *sigBench {
		e.Sig = runSigBench(*sigReps)
	}
	if *traceBench {
		e.Trace = runTraceBench(*traceReps, *traceMB)
	}
	if *coordBench {
		e.Coord = runCoordBench([]int{*coordWorkers}, *coordShards)
	}
	if *churnBench {
		e.Churn = runChurnBench(*churnQuanta)
	}

	if *check != "" {
		checkRegression(*check, e, *tolerance, !microOnly)
		if *out == "" {
			return
		}
	}
	if microOnly && *out == "" {
		// The micro-only sweeps are smoke/inspection modes (make allocbench,
		// make sigbench); recording an artifact requires an explicit -out.
		return
	}

	path := *out
	if path == "" {
		path = "results/BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}
	rpt := load(path)
	rpt.Entries = append(rpt.Entries, e)
	buf, err := json.MarshalIndent(rpt, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	if microOnly {
		fmt.Printf("%s: %s %d allocator points, %d signature points, %d trace points, %d coordinator points, %d churn points\n",
			path, e.Label, len(e.Alloc), len(e.Sig), len(e.Trace), len(e.Coord), len(e.Churn))
		return
	}
	fmt.Printf("%s: %s min %.3fs over %d reps\n", path, e.Label, e.MinSeconds, *reps)
	if n := len(rpt.Entries); n >= 2 {
		base, cur := rpt.Entries[0], rpt.Entries[n-1]
		if base.AvgImprovementPct != cur.AvgImprovementPct {
			fmt.Printf("note: %q and %q have different determinism checksums; speedup below compares different experiments\n",
				base.Label, cur.Label)
		}
		fmt.Printf("speedup vs %s: %.2fx\n", base.Label, base.MinSeconds/cur.MinSeconds)
	}
}

// checkRegression is the perf gate: the measured entry must reproduce the
// baseline's determinism checksums exactly (otherwise the two builds ran
// different experiments and no time comparison is meaningful) and must not
// be more than tolerance slower than the baseline's newest entry. When both
// entries carry allocator points, the matching points are gated the same
// way (exact checksum, tolerance on p50). Exits the process non-zero on any
// violation. sweepRan is false under -alloconly, where only the allocator
// points are comparable.
func checkRegression(path string, e Entry, tolerance float64, sweepRan bool) {
	buf, err := os.ReadFile(path)
	if err != nil {
		fatal(fmt.Errorf("-check baseline: %w", err))
	}
	var base Report
	if err := json.Unmarshal(buf, &base); err != nil {
		fatal(fmt.Errorf("-check baseline %s: %w", path, err))
	}
	if len(base.Entries) == 0 {
		fatal(fmt.Errorf("-check baseline %s has no entries", path))
	}
	ref := base.Entries[len(base.Entries)-1]
	if sweepRan {
		if ref.AvgImprovementPct != e.AvgImprovementPct || ref.MaxImprovementPct != e.MaxImprovementPct {
			fmt.Fprintf(os.Stderr, "bench: determinism checksum mismatch vs baseline %q: avg %.12f%% / max %.12f%%, baseline %.12f%% / %.12f%% — the experiment itself changed, record a new baseline before gating on time\n",
				ref.Label, e.AvgImprovementPct, e.MaxImprovementPct, ref.AvgImprovementPct, ref.MaxImprovementPct)
			os.Exit(1)
		}
		limit := ref.MinSeconds * (1 + tolerance)
		ratio := e.MinSeconds/ref.MinSeconds - 1
		if e.MinSeconds > limit {
			fmt.Fprintf(os.Stderr, "bench: REGRESSION: min %.3fs vs baseline %q %.3fs (%+.1f%%, tolerance %.0f%%)\n",
				e.MinSeconds, ref.Label, ref.MinSeconds, 100*ratio, 100*tolerance)
			os.Exit(1)
		}
		fmt.Printf("bench: ok: min %.3fs vs baseline %q %.3fs (%+.1f%%, tolerance %.0f%%)\n",
			e.MinSeconds, ref.Label, ref.MinSeconds, 100*ratio, 100*tolerance)
	}
	if len(e.Alloc) > 0 && len(ref.Alloc) > 0 {
		if !checkAllocPoints(ref.Alloc, e.Alloc, tolerance) {
			os.Exit(1)
		}
	}
	if len(e.Sig) > 0 && len(ref.Sig) > 0 {
		if !checkSigPoints(ref.Sig, e.Sig, tolerance) {
			os.Exit(1)
		}
	}
	if len(e.Trace) > 0 && len(ref.Trace) > 0 {
		if !checkTracePoints(ref.Trace, e.Trace, tolerance) {
			os.Exit(1)
		}
	}
	if len(e.Churn) > 0 && len(ref.Churn) > 0 {
		if !checkChurnPoints(ref.Churn, e.Churn, tolerance) {
			os.Exit(1)
		}
	}
}

// pool returns the Figure 10 bench pool: six SPEC profiles spanning every
// behaviour class (15 four-benchmark mixes), matching bench_test.go.
func pool() []workload.Profile {
	var out []workload.Profile
	for _, n := range []string{"mcf", "omnetpp", "libquantum", "hmmer", "povray", "gobmk"} {
		p, err := workload.ByName(n)
		if err != nil {
			fatal(err)
		}
		out = append(out, p)
	}
	return out
}

func load(path string) Report {
	rpt := Report{
		Benchmark: "Figure10 sweep: 6-benchmark SPEC pool, 4-per-mix, Quick scale, WIG policy",
		Protocol:  "N reps in one process, minimum wall time reported; run baseline and candidate builds in one quiet window and compare min_seconds",
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		return rpt
	}
	if err := json.Unmarshal(buf, &rpt); err != nil {
		fatal(fmt.Errorf("%s exists but is not a bench report: %w", path, err))
	}
	return rpt
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
