// Command tracegen captures synthetic benchmark reference streams into the
// compact binary trace format (internal/trace), compiles captures into the
// v2 mmap-ready corpus format, and inspects existing traces of either
// container. Traces decouple workload generation from simulation: a captured
// (or externally produced) trace can be replayed through the cache simulator.
//
// Usage:
//
//	tracegen -bench mcf -n 1000000 -o mcf.trc      # capture (v1 varint)
//	tracegen -compile dir/                         # every trace in dir → *.symc
//	tracegen -compile mcf.trc -compress            # one file, framed flate
//	tracegen -compile dir/ -sample 4               # every-4th-reference corpus
//	tracegen -inspect mcf.symc                     # summarise either format
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"symbiosched/internal/experiments"
	"symbiosched/internal/trace"
	"symbiosched/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark profile to capture")
	n := flag.Uint64("n", 1_000_000, "instructions to capture")
	out := flag.String("o", "", "output trace file (capture) or directory (compile; default: alongside the input)")
	div := flag.Uint64("scale", 16, "region scale divisor")
	seed := flag.Uint64("seed", 42, "workload seed")
	inspect := flag.String("inspect", "", "trace file to summarise (v1 or compiled)")
	compile := flag.String("compile", "", "trace file or directory to compile into the v2 corpus format (*.symc)")
	compress := flag.Bool("compress", false, "with -compile: framed flate compression instead of raw mmap-ready records")
	frameRuns := flag.Int("frame-runs", 0, "with -compress: records per independent frame (0 = 64Ki)")
	sample := flag.Int("sample", 1, "with -compile: keep every Nth memory reference, folding the rest into compute gaps (recorded in the header)")
	workers := flag.Int("workers", 0, "with -compile: parallel compile workers (0 = GOMAXPROCS)")
	flag.Parse()

	switch {
	case *inspect != "":
		if err := doInspect(*inspect); err != nil {
			fatal(err)
		}
	case *compile != "":
		if err := doCompile(*compile, *out, *compress, *frameRuns, *sample, *workers); err != nil {
			fatal(err)
		}
	case *bench != "":
		if *out == "" {
			*out = *bench + ".trc"
		}
		if err := doCapture(*bench, *out, *n, *div, *seed); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

func doCapture(bench, out string, n, div, seed uint64) error {
	p, err := workload.ByName(bench)
	if err != nil {
		return err
	}
	gens := p.NewThreads(1, seed, div)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := trace.Capture(gens[0], n, f); err != nil {
		f.Close()
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	// Close exactly once, and only after the capture flushed: the close error
	// is the write error on a full disk.
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("captured %d instructions of %s (thread 0/%d) to %s (%d bytes)\n",
		n, bench, len(gens), out, st.Size())
	return nil
}

// doCompile converts one trace file — or every trace in a directory, in
// parallel — into the v2 compiled format. The input may be a v1 capture or
// an existing v2 file (recompiling changes container or sample rate). With
// -sample N only every Nth memory reference is kept; the downsampled file
// records the rate in its header and the conversion prints the footprint
// coverage against the full-rate original, the validation bound
// EXPERIMENTS.md documents.
func doCompile(in, outDir string, compress bool, frameRuns, sample, workers int) error {
	st, err := os.Stat(in)
	if err != nil {
		return err
	}
	var files []experiments.TraceFile
	if st.IsDir() {
		if files, err = experiments.ListTraceDir(in); err != nil {
			return err
		}
	} else {
		files = []experiments.TraceFile{{Name: strings.TrimSuffix(filepath.Base(in), filepath.Ext(in)), Path: in}}
	}

	if workers <= 0 {
		workers = len(files)
	}
	if workers > len(files) {
		workers = len(files)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		ferr error
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(files) {
					return
				}
				if err := compileOne(files[i], outDir, compress, frameRuns, sample); err != nil {
					mu.Lock()
					if ferr == nil {
						ferr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	if ferr != nil {
		return ferr
	}
	fmt.Printf("compiled %d trace(s) in %v\n", len(files), time.Since(start).Round(time.Millisecond))
	return nil
}

func compileOne(tf experiments.TraceFile, outDir string, compress bool, frameRuns, sample int) error {
	f, err := os.Open(tf.Path)
	if err != nil {
		return err
	}
	var ct *trace.CompiledTrace
	var prefix [8]byte
	if _, err := io.ReadFull(f, prefix[:]); err != nil {
		f.Close()
		return fmt.Errorf("%s: %w", tf.Path, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	switch trace.SniffFormat(prefix[:]) {
	case trace.FormatCompiled:
		ct, err = trace.ReadCompiled(f)
	default:
		ct, err = trace.Compile(f)
	}
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", tf.Path, err)
	}

	if sample > 1 {
		full := ct
		if ct, err = trace.Downsample(full, sample); err != nil {
			return fmt.Errorf("%s: %w", tf.Path, err)
		}
		fmt.Printf("%s: downsampled 1/%d: %d -> %d refs, footprint coverage %.3f\n",
			tf.Path, sample, full.MemRefs(), ct.MemRefs(), trace.DownsampleCoverage(full, ct))
	}

	dir := outDir
	if dir == "" {
		dir = filepath.Dir(tf.Path)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	outPath := filepath.Join(dir, tf.Name+trace.CompiledExt)
	of, err := os.Create(outPath)
	if err != nil {
		return err
	}
	if compress {
		err = trace.WriteCompiledFrames(of, ct, frameRuns, 0)
	} else {
		err = trace.WriteCompiled(of, ct)
	}
	if err != nil {
		of.Close()
		return fmt.Errorf("%s: %w", outPath, err)
	}
	if err := of.Close(); err != nil {
		return err
	}
	st, err := os.Stat(outPath)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d instructions, %d refs -> %s (%d bytes, fingerprint %016x)\n",
		tf.Path, ct.Instructions(), ct.MemRefs(), outPath, st.Size(), ct.Fingerprint())
	return nil
}

func doInspect(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var prefix [8]byte
	if _, err := io.ReadFull(f, prefix[:]); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if trace.SniffFormat(prefix[:]) == trace.FormatCompiled {
		return inspectCompiled(path)
	}

	r := trace.NewReader(f)
	var instr, mem, tail, longestRun uint64
	lines := trace.LineSet{}
	var lo, hi uint64
	first := true
	for {
		skip, line, isMem, err := r.NextRun()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		instr += skip
		if skip > longestRun {
			longestRun = skip
		}
		if !isMem {
			tail += skip
			continue
		}
		instr++
		mem++
		lines.Add(line)
		if first || line < lo {
			lo = line
		}
		if first || line > hi {
			hi = line
		}
		first = false
	}
	distinct := lines.Count()
	fmt.Printf("%s: %d instructions, %d memory refs (%.1f%%), %d distinct lines",
		path, instr, mem, 100*float64(mem)/float64(max(instr, 1)), distinct)
	if !first {
		avgRun := float64(instr-mem-tail) / float64(mem)
		fmt.Printf(", footprint %d KiB, line range [%#x, %#x]", distinct*64/1024, lo, hi)
		fmt.Printf("\n%s: %d runs (avg %.1f computes/run, longest %d), %d trailing computes, compiled size %d KiB",
			path, mem, avgRun, longestRun, tail, mem*16/1024)
	}
	fmt.Println()
	return nil
}

// inspectCompiled summarises a v2 trace from its header plus (for the line
// statistics) one decode of the records — the mmap path when the file is raw.
func inspectCompiled(path string) error {
	mt, err := trace.OpenCompiled(path)
	if err != nil {
		return err
	}
	defer mt.Close()
	hdr, ct := mt.Header(), mt.Trace()

	container := "raw (mmap-ready)"
	if hdr.Framed {
		container = fmt.Sprintf("framed flate (%d frames x %d runs)", hdr.FrameCount, hdr.FrameRuns)
	} else if mt.Mapped() {
		container = "raw (mapped zero-decode)"
	}
	fmt.Printf("%s: compiled v2, %s, sample rate 1/%d, fingerprint %016x\n",
		path, container, hdr.SampleRate, hdr.Fingerprint)

	var lo, hi, longestRun uint64
	first := true
	for i := range ct.Runs {
		r := &ct.Runs[i]
		if r.Skip > longestRun {
			longestRun = r.Skip
		}
		if first || r.Line < lo {
			lo = r.Line
		}
		if first || r.Line > hi {
			hi = r.Line
		}
		first = false
	}
	distinct := ct.Lines().Count()
	fmt.Printf("%s: %d instructions, %d memory refs (%.1f%%), %d distinct lines",
		path, ct.Instructions(), ct.MemRefs(),
		100*float64(ct.MemRefs())/float64(max(ct.Instructions(), 1)), distinct)
	if !first {
		avgRun := float64(ct.Instructions()-ct.MemRefs()-ct.Tail) / float64(ct.MemRefs())
		fmt.Printf(", footprint %d KiB, line range [%#x, %#x]", distinct*64/1024, lo, hi)
		fmt.Printf("\n%s: %d runs (avg %.1f computes/run, longest %d), %d trailing computes, resident size %d KiB",
			path, ct.MemRefs(), avgRun, longestRun, ct.Tail, ct.MemRefs()*16/1024)
	}
	fmt.Println()
	return nil
}
