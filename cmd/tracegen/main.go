// Command tracegen captures synthetic benchmark reference streams into the
// compact binary trace format (internal/trace) and inspects existing traces.
// Traces decouple workload generation from simulation: a captured (or
// externally produced) trace can be replayed through the cache simulator.
//
// Usage:
//
//	tracegen -bench mcf -n 1000000 -o mcf.trc     # capture
//	tracegen -inspect mcf.trc                     # summarise
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"symbiosched/internal/bitvec"
	"symbiosched/internal/trace"
	"symbiosched/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark profile to capture")
	n := flag.Uint64("n", 1_000_000, "instructions to capture")
	out := flag.String("o", "", "output trace file")
	div := flag.Uint64("scale", 16, "region scale divisor")
	seed := flag.Uint64("seed", 42, "workload seed")
	inspect := flag.String("inspect", "", "trace file to summarise")
	flag.Parse()

	switch {
	case *inspect != "":
		if err := doInspect(*inspect); err != nil {
			fatal(err)
		}
	case *bench != "":
		if *out == "" {
			*out = *bench + ".trc"
		}
		if err := doCapture(*bench, *out, *n, *div, *seed); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

func doCapture(bench, out string, n, div, seed uint64) error {
	p, err := workload.ByName(bench)
	if err != nil {
		return err
	}
	gens := p.NewThreads(1, seed, div)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := trace.Capture(gens[0], n, f); err != nil {
		f.Close()
		return err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	// Close exactly once, and only after the capture flushed: the close error
	// is the write error on a full disk.
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("captured %d instructions of %s (thread 0/%d) to %s (%d bytes)\n",
		n, bench, len(gens), out, st.Size())
	return nil
}

// pageLines is the line granularity of the inspect line set: one bitvec page
// covers 2 MiB of address space in 4 KiB of memory, so the set's footprint is
// proportional to the trace's touched address *pages* — bounded and ~50×
// denser than the map[line]bool it replaced — instead of one multi-byte map
// entry per distinct line.
const pageLines = 1 << 15

// lineSet is a paged bit set over cache-line numbers.
type lineSet map[uint64]*bitvec.Vector

func (s lineSet) add(line uint64) {
	page := s[line/pageLines]
	if page == nil {
		page = bitvec.New(pageLines)
		s[line/pageLines] = page
	}
	page.Set(int(line % pageLines))
}

func (s lineSet) count() uint64 {
	var n uint64
	for _, page := range s {
		n += uint64(page.PopCount())
	}
	return n
}

func doInspect(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := trace.NewReader(f)
	var instr, mem, tail, longestRun uint64
	lines := lineSet{}
	var lo, hi uint64
	first := true
	for {
		skip, line, isMem, err := r.NextRun()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		instr += skip
		if skip > longestRun {
			longestRun = skip
		}
		if !isMem {
			tail += skip
			continue
		}
		instr++
		mem++
		lines.add(line)
		if first || line < lo {
			lo = line
		}
		if first || line > hi {
			hi = line
		}
		first = false
	}
	distinct := lines.count()
	fmt.Printf("%s: %d instructions, %d memory refs (%.1f%%), %d distinct lines",
		path, instr, mem, 100*float64(mem)/float64(max(instr, 1)), distinct)
	if !first {
		avgRun := float64(instr-mem-tail) / float64(mem)
		fmt.Printf(", footprint %d KiB, line range [%#x, %#x]", distinct*64/1024, lo, hi)
		fmt.Printf("\n%s: %d runs (avg %.1f computes/run, longest %d), %d trailing computes, compiled size %d KiB",
			path, mem, avgRun, longestRun, tail, mem*16/1024)
	}
	fmt.Println()
	return nil
}
