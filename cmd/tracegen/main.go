// Command tracegen captures synthetic benchmark reference streams into the
// compact binary trace format (internal/trace) and inspects existing traces.
// Traces decouple workload generation from simulation: a captured (or
// externally produced) trace can be replayed through the cache simulator.
//
// Usage:
//
//	tracegen -bench mcf -n 1000000 -o mcf.trc     # capture
//	tracegen -inspect mcf.trc                     # summarise
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"symbiosched/internal/trace"
	"symbiosched/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "benchmark profile to capture")
	n := flag.Uint64("n", 1_000_000, "instructions to capture")
	out := flag.String("o", "", "output trace file")
	div := flag.Uint64("scale", 16, "region scale divisor")
	seed := flag.Uint64("seed", 42, "workload seed")
	inspect := flag.String("inspect", "", "trace file to summarise")
	flag.Parse()

	switch {
	case *inspect != "":
		if err := doInspect(*inspect); err != nil {
			fatal(err)
		}
	case *bench != "":
		if *out == "" {
			*out = *bench + ".trc"
		}
		if err := doCapture(*bench, *out, *n, *div, *seed); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}

func doCapture(bench, out string, n, div, seed uint64) error {
	p, err := workload.ByName(bench)
	if err != nil {
		return err
	}
	gens := p.NewThreads(1, seed, div)
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Capture(gens[0], n, f); err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("captured %d instructions of %s (thread 0/%d) to %s (%d bytes)\n",
		n, bench, len(gens), out, st.Size())
	return f.Close()
}

func doInspect(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := trace.NewReader(f)
	var instr, mem uint64
	lines := map[uint64]bool{}
	var lo, hi uint64
	first := true
	for {
		ref, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		instr++
		if ref.Mem {
			mem++
			line := ref.Addr >> 6
			lines[line] = true
			if first || line < lo {
				lo = line
			}
			if first || line > hi {
				hi = line
			}
			first = false
		}
	}
	fmt.Printf("%s: %d instructions, %d memory refs (%.1f%%), %d distinct lines",
		path, instr, mem, 100*float64(mem)/float64(max64(instr, 1)), len(lines))
	if !first {
		fmt.Printf(", footprint %d KiB, line range [%#x, %#x]",
			uint64(len(lines))*64/1024, lo, hi)
	}
	fmt.Println()
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
